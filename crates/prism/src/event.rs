//! Events — the sole communication mechanism between Prism components.

use redep_model::ParamValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The role an event plays in an interaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// A request expecting a reply.
    Request,
    /// A reply to an earlier request.
    Reply,
    /// A one-way notification.
    Notification,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Request => f.write_str("request"),
            EventKind::Reply => f.write_str("reply"),
            EventKind::Notification => f.write_str("notification"),
        }
    }
}

/// An event routed between components by connectors (and between hosts by
/// the distribution transport).
///
/// Events carry a name, typed parameters, and an optional opaque payload
/// (used e.g. to ship serialized component state during redeployment). The
/// `size` field is what network accounting charges — it defaults to a rough
/// serialized size but workload generators can set it explicitly to model
/// arbitrary interaction volumes.
///
/// # Example
///
/// ```
/// use redep_prism::{Event, EventKind};
/// let e = Event::notification("position.update")
///     .with_param("lat", 34.02)
///     .with_param("lon", -118.28)
///     .with_size(64);
/// assert_eq!(e.name(), "position.update");
/// assert_eq!(e.kind(), EventKind::Notification);
/// assert_eq!(e.param_f64("lat"), Some(34.02));
/// assert_eq!(e.size(), 64);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Event {
    name: String,
    kind: EventKind,
    params: BTreeMap<String, ParamValue>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    payload: Vec<u8>,
    /// Name of the component that emitted the event (set by the runtime).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    source: Option<String>,
    /// Explicit wire size override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    size: Option<u64>,
}

impl Event {
    /// Creates an event of the given kind.
    pub fn new(name: impl Into<String>, kind: EventKind) -> Self {
        Event {
            name: name.into(),
            kind,
            params: BTreeMap::new(),
            payload: Vec::new(),
            source: None,
            size: None,
        }
    }

    /// Creates a request event.
    pub fn request(name: impl Into<String>) -> Self {
        Event::new(name, EventKind::Request)
    }

    /// Creates a reply event.
    pub fn reply(name: impl Into<String>) -> Self {
        Event::new(name, EventKind::Reply)
    }

    /// Creates a notification event.
    pub fn notification(name: impl Into<String>) -> Self {
        Event::new(name, EventKind::Notification)
    }

    /// The event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The event kind.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The emitting component's instance name, if stamped by the runtime.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Stamps the emitting component (done by the runtime on emission).
    pub(crate) fn set_source(&mut self, source: impl Into<String>) {
        self.source = Some(source.into());
    }

    /// Adds a typed parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Reads a parameter.
    pub fn param(&self, key: &str) -> Option<&ParamValue> {
        self.params.get(key)
    }

    /// Reads a parameter as a float (integers coerced).
    pub fn param_f64(&self, key: &str) -> Option<f64> {
        self.param(key).and_then(ParamValue::as_f64)
    }

    /// Reads a parameter as text.
    pub fn param_text(&self, key: &str) -> Option<&str> {
        self.param(key).and_then(ParamValue::as_text)
    }

    /// Attaches an opaque payload (builder style).
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// The opaque payload (empty when none was attached).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Overrides the accounted wire size (builder style).
    pub fn with_size(mut self, size: u64) -> Self {
        self.size = Some(size);
        self
    }

    /// The size charged on the wire: the explicit override when set,
    /// otherwise an estimate (name + params + payload bytes).
    pub fn size(&self) -> u64 {
        self.size.unwrap_or_else(|| {
            let params: u64 = self
                .params
                .iter()
                .map(|(k, v)| k.len() as u64 + 8 + v.to_string().len() as u64)
                .sum();
            self.name.len() as u64 + params + self.payload.len() as u64 + 16
        })
    }

    /// Serializes the event for the wire.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] if serialization fails.
    pub fn encode(&self) -> Result<Vec<u8>, crate::PrismError> {
        serde_json::to_vec(self).map_err(|e| crate::PrismError::Codec(e.to_string()))
    }

    /// Deserializes an event from the wire.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] for malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::PrismError> {
        serde_json::from_slice(bytes).map_err(|e| crate::PrismError::Codec(e.to_string()))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} '{}'", self.kind, self.name)?;
        if let Some(src) = &self.source {
            write!(f, " from {src}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Event::request("r").kind(), EventKind::Request);
        assert_eq!(Event::reply("r").kind(), EventKind::Reply);
        assert_eq!(Event::notification("n").kind(), EventKind::Notification);
    }

    #[test]
    fn params_typed_access() {
        let e = Event::notification("n")
            .with_param("f", 1.5)
            .with_param("s", "text")
            .with_param("i", 3i64);
        assert_eq!(e.param_f64("f"), Some(1.5));
        assert_eq!(e.param_f64("i"), Some(3.0));
        assert_eq!(e.param_text("s"), Some("text"));
        assert_eq!(e.param_f64("missing"), None);
    }

    #[test]
    fn size_override_and_estimate() {
        let small = Event::notification("n");
        assert!(small.size() > 0);
        let sized = Event::notification("n").with_size(4096);
        assert_eq!(sized.size(), 4096);
        let with_payload = Event::notification("n").with_payload(vec![0; 100]);
        assert!(with_payload.size() >= 100);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut e = Event::request("cmd")
            .with_param("x", 2.0)
            .with_payload(vec![1, 2, 3])
            .with_size(99);
        e.set_source("sensor-1");
        let bytes = e.encode().unwrap();
        let back = Event::decode(&bytes).unwrap();
        assert_eq!(e, back);
        assert_eq!(back.source(), Some("sensor-1"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Event::decode(b"not json").is_err());
    }

    #[test]
    fn display_mentions_kind_name_source() {
        let mut e = Event::request("cmd");
        e.set_source("gui");
        assert_eq!(e.to_string(), "request 'cmd' from gui");
    }
}
