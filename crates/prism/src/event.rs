//! Events — the sole communication mechanism between Prism components.

use crate::symbol::Symbol;
use redep_model::ParamValue;
use redep_telemetry::TraceCtx;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The role an event plays in an interaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// A request expecting a reply.
    Request,
    /// A reply to an earlier request.
    Reply,
    /// A one-way notification.
    Notification,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Request => f.write_str("request"),
            EventKind::Reply => f.write_str("reply"),
            EventKind::Notification => f.write_str("notification"),
        }
    }
}

/// Parameters of one event, ordered by name.
///
/// Most events carry at most a handful of parameters, so the list stores up
/// to [`INLINE_PARAMS`] entries inline (no heap allocation at all for the
/// common case) and spills to a `Vec` beyond that. Entries are kept sorted
/// by parameter *name* on insert, preserving the overwrite semantics,
/// deterministic iteration order, and JSON shape of the `BTreeMap` it
/// replaced.
#[derive(Clone, Debug)]
pub(crate) enum ParamVec {
    /// Up to [`INLINE_PARAMS`] entries, filled prefix-first.
    Inline {
        /// Number of occupied slots.
        len: u8,
        /// The slots; `slots[..len]` are `Some`, the rest `None`.
        slots: [Option<(Symbol, ParamValue)>; INLINE_PARAMS],
    },
    /// Heap fallback for parameter-heavy events.
    Spilled(Vec<(Symbol, ParamValue)>),
}

/// Number of parameters stored without touching the heap.
pub(crate) const INLINE_PARAMS: usize = 4;

impl ParamVec {
    pub(crate) fn new() -> Self {
        ParamVec::Inline {
            len: 0,
            slots: [None, None, None, None],
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            ParamVec::Inline { len, .. } => *len as usize,
            ParamVec::Spilled(v) => v.len(),
        }
    }

    pub(crate) fn iter(&self) -> ParamIter<'_> {
        match self {
            ParamVec::Inline { len, slots } => ParamIter::Inline(slots[..*len as usize].iter()),
            ParamVec::Spilled(v) => ParamIter::Spilled(v.iter()),
        }
    }

    /// Inserts keeping name order; an existing entry with the same name is
    /// overwritten (the `BTreeMap` contract).
    pub(crate) fn insert(&mut self, key: Symbol, value: ParamValue) {
        match self {
            ParamVec::Inline { len, slots } => {
                let n = *len as usize;
                let mut pos = n;
                for (i, slot) in slots[..n].iter().enumerate() {
                    let existing = slot.as_ref().expect("prefix filled").0;
                    if existing == key {
                        slots[i] = Some((key, value));
                        return;
                    }
                    if existing > key {
                        pos = i;
                        break;
                    }
                }
                if n < INLINE_PARAMS {
                    for i in (pos..n).rev() {
                        slots[i + 1] = slots[i].take();
                    }
                    slots[pos] = Some((key, value));
                    *len += 1;
                } else {
                    let mut spilled: Vec<(Symbol, ParamValue)> = Vec::with_capacity(n + 1);
                    spilled.extend(slots.iter_mut().map(|s| s.take().expect("prefix filled")));
                    spilled.insert(pos, (key, value));
                    *self = ParamVec::Spilled(spilled);
                }
            }
            ParamVec::Spilled(v) => match v.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => v[i] = (key, value),
                Err(i) => v.insert(i, (key, value)),
            },
        }
    }

    pub(crate) fn get(&self, key: &str) -> Option<&ParamValue> {
        self.iter().find(|(k, _)| k.as_str() == key).map(|(_, v)| v)
    }
}

/// Iterator over a [`ParamVec`]'s `(name, value)` entries in name order.
pub(crate) enum ParamIter<'a> {
    Inline(std::slice::Iter<'a, Option<(Symbol, ParamValue)>>),
    Spilled(std::slice::Iter<'a, (Symbol, ParamValue)>),
}

impl<'a> Iterator for ParamIter<'a> {
    type Item = &'a (Symbol, ParamValue);
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ParamIter::Inline(it) => it.next().map(|o| o.as_ref().expect("prefix filled")),
            ParamIter::Spilled(it) => it.next(),
        }
    }
}

impl PartialEq for ParamVec {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// An event routed between components by connectors (and between hosts by
/// the distribution transport).
///
/// Events carry an interned [`Symbol`] name, typed parameters (inline up to
/// four, stored in a small-vector `ParamVec`), and an optional opaque payload (used e.g. to
/// ship serialized component state during redeployment). The `size` field is
/// what network accounting charges — it defaults to a rough serialized size
/// but workload generators can set it explicitly to model arbitrary
/// interaction volumes.
///
/// The string API is a thin shim over the symbols: any `impl Into<Symbol>`
/// (including `&str` and `String`) is accepted where a name goes, and
/// [`Event::name`] hands the `&str` back without allocating.
///
/// # Example
///
/// ```
/// use redep_prism::{Event, EventKind};
/// let e = Event::notification("position.update")
///     .with_param("lat", 34.02)
///     .with_param("lon", -118.28)
///     .with_size(64);
/// assert_eq!(e.name(), "position.update");
/// assert_eq!(e.kind(), EventKind::Notification);
/// assert_eq!(e.param_f64("lat"), Some(34.02));
/// assert_eq!(e.size(), 64);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub(crate) name: Symbol,
    pub(crate) kind: EventKind,
    pub(crate) params: ParamVec,
    pub(crate) payload: Vec<u8>,
    /// Name of the component that emitted the event (set by the runtime).
    pub(crate) source: Option<Symbol>,
    /// Explicit wire size override.
    pub(crate) size: Option<u64>,
    /// Causal trace context, carried across hosts on the wire. Events
    /// without one encode byte-identically to the pre-trace format.
    pub(crate) trace: Option<TraceCtx>,
}

impl Event {
    /// Creates an event of the given kind.
    pub fn new(name: impl Into<Symbol>, kind: EventKind) -> Self {
        Event {
            name: name.into(),
            kind,
            params: ParamVec::new(),
            payload: Vec::new(),
            source: None,
            size: None,
            trace: None,
        }
    }

    /// Creates a request event.
    pub fn request(name: impl Into<Symbol>) -> Self {
        Event::new(name, EventKind::Request)
    }

    /// Creates a reply event.
    pub fn reply(name: impl Into<Symbol>) -> Self {
        Event::new(name, EventKind::Reply)
    }

    /// Creates a notification event.
    pub fn notification(name: impl Into<Symbol>) -> Self {
        Event::new(name, EventKind::Notification)
    }

    /// The event name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The event name as its interned symbol (id comparison, no memcmp).
    pub fn name_symbol(&self) -> Symbol {
        self.name
    }

    /// The event kind.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The emitting component's instance name, if stamped by the runtime.
    pub fn source(&self) -> Option<&str> {
        self.source.map(Symbol::as_str)
    }

    /// Stamps the emitting component (done by the runtime on emission).
    pub(crate) fn set_source(&mut self, source: impl Into<Symbol>) {
        self.source = Some(source.into());
    }

    /// Adds a typed parameter (builder style).
    pub fn with_param(mut self, key: impl Into<Symbol>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Reads a parameter.
    pub fn param(&self, key: &str) -> Option<&ParamValue> {
        self.params.get(key)
    }

    /// Reads a parameter as a float (integers coerced).
    pub fn param_f64(&self, key: &str) -> Option<f64> {
        self.param(key).and_then(ParamValue::as_f64)
    }

    /// Reads a parameter as text.
    pub fn param_text(&self, key: &str) -> Option<&str> {
        self.param(key).and_then(ParamValue::as_text)
    }

    /// Attaches an opaque payload (builder style).
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// The opaque payload (empty when none was attached).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Overrides the accounted wire size (builder style).
    pub fn with_size(mut self, size: u64) -> Self {
        self.size = Some(size);
        self
    }

    /// Attaches a causal trace context (builder style). The context rides
    /// the wire with the event and links the receiving host's telemetry to
    /// the span that caused the send.
    pub fn with_trace(mut self, ctx: TraceCtx) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Stamps or replaces the trace context in place.
    pub fn set_trace(&mut self, ctx: TraceCtx) {
        self.trace = Some(ctx);
    }

    /// The causal trace context, if the event carries one.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// The size charged on the wire: the explicit override when set,
    /// otherwise an estimate (name + params + payload bytes), computed
    /// without allocating.
    pub fn size(&self) -> u64 {
        self.size.unwrap_or_else(|| {
            let params: u64 = self
                .params
                .iter()
                .map(|(k, v)| k.as_str().len() as u64 + 8 + param_value_width(v))
                .sum();
            self.name.as_str().len() as u64 + params + self.payload.len() as u64 + 16
        })
    }

    /// Serializes the event for the wire: the compact binary codec by
    /// default, JSON when the `codec=json` debug option is active (see
    /// [`crate::codec::set_wire_codec`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] if serialization fails.
    pub fn encode(&self) -> Result<Vec<u8>, crate::PrismError> {
        self.encode_with(crate::codec::wire_codec())
    }

    /// Serializes with an explicit codec, bypassing the global setting.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] if serialization fails.
    pub fn encode_with(
        &self,
        codec: crate::codec::WireCodec,
    ) -> Result<Vec<u8>, crate::PrismError> {
        match codec {
            crate::codec::WireCodec::Binary => Ok(crate::codec::encode_event(self)),
            crate::codec::WireCodec::Json => {
                serde_json::to_vec(self).map_err(|e| crate::PrismError::Codec(e.to_string()))
            }
        }
    }

    /// Deserializes an event from the wire. The codec is sniffed from the
    /// leading byte, so binary and JSON frames can coexist on one link.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] for malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::PrismError> {
        if bytes.first() == Some(&crate::codec::EVENT_MAGIC) {
            crate::codec::decode_event(bytes)
        } else {
            serde_json::from_slice(bytes).map_err(|e| crate::PrismError::Codec(e.to_string()))
        }
    }
}

/// Width estimate of one parameter value's textual form, allocation-free
/// (the previous implementation built a `String` per parameter only to take
/// its length).
fn param_value_width(v: &ParamValue) -> u64 {
    match v {
        ParamValue::Bool(b) => {
            if *b {
                4 // "true"
            } else {
                5 // "false"
            }
        }
        ParamValue::Int(i) => decimal_width(*i),
        // f64 Display output varies; charge the round-trip-precision worst
        // case instead of formatting.
        ParamValue::Float(_) => 17,
        ParamValue::Text(s) => s.len() as u64,
    }
}

/// Number of characters in the decimal rendering of `i`.
fn decimal_width(i: i64) -> u64 {
    let mut w = u64::from(i < 0);
    let mut magnitude = i.unsigned_abs();
    loop {
        w += 1;
        magnitude /= 10;
        if magnitude == 0 {
            return w;
        }
    }
}

impl Serialize for Event {
    fn serialize(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), self.name.serialize());
        obj.insert("kind".to_owned(), self.kind.serialize());
        let mut params = BTreeMap::new();
        for (k, v) in self.params.iter() {
            params.insert(k.as_str().to_owned(), v.serialize());
        }
        obj.insert("params".to_owned(), Value::Object(params));
        if !self.payload.is_empty() {
            obj.insert("payload".to_owned(), self.payload.serialize());
        }
        if let Some(source) = self.source {
            obj.insert("source".to_owned(), source.serialize());
        }
        if let Some(size) = self.size {
            obj.insert("size".to_owned(), size.serialize());
        }
        if let Some(trace) = self.trace {
            let mut t = BTreeMap::new();
            t.insert("trace_id".to_owned(), trace.trace_id.serialize());
            t.insert("span_id".to_owned(), trace.span_id.serialize());
            if let Some(parent) = trace.parent_id {
                t.insert("parent_id".to_owned(), parent.serialize());
            }
            obj.insert("trace".to_owned(), Value::Object(t));
        }
        Value::Object(obj)
    }
}

impl Deserialize for Event {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let Value::Object(obj) = value else {
            return Err(serde::Error::expected("event object", value));
        };
        let name = Symbol::deserialize(
            obj.get("name")
                .ok_or_else(|| serde::Error::custom("event missing 'name'"))?,
        )?;
        let kind = EventKind::deserialize(
            obj.get("kind")
                .ok_or_else(|| serde::Error::custom("event missing 'kind'"))?,
        )?;
        let mut params = ParamVec::new();
        if let Some(v) = obj.get("params") {
            let Value::Object(map) = v else {
                return Err(serde::Error::expected("params object", v));
            };
            for (k, v) in map {
                params.insert(Symbol::intern(k), ParamValue::deserialize(v)?);
            }
        }
        let payload = match obj.get("payload") {
            Some(v) => Vec::<u8>::deserialize(v)?,
            None => Vec::new(),
        };
        let source = match obj.get("source") {
            Some(v) => Some(Symbol::deserialize(v)?),
            None => None,
        };
        let size = match obj.get("size") {
            Some(v) => Some(u64::deserialize(v)?),
            None => None,
        };
        let trace = match obj.get("trace") {
            Some(v) => {
                let Value::Object(t) = v else {
                    return Err(serde::Error::expected("trace object", v));
                };
                let trace_id = u64::deserialize(
                    t.get("trace_id")
                        .ok_or_else(|| serde::Error::custom("trace missing 'trace_id'"))?,
                )?;
                let span_id = u64::deserialize(
                    t.get("span_id")
                        .ok_or_else(|| serde::Error::custom("trace missing 'span_id'"))?,
                )?;
                let parent_id = match t.get("parent_id") {
                    Some(p) => Some(u64::deserialize(p)?),
                    None => None,
                };
                Some(TraceCtx {
                    trace_id,
                    span_id,
                    parent_id,
                })
            }
            None => None,
        };
        Ok(Event {
            name,
            kind,
            params,
            payload,
            source,
            size,
            trace,
        })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} '{}'", self.kind, self.name)?;
        if let Some(src) = self.source {
            write!(f, " from {src}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Event::request("r").kind(), EventKind::Request);
        assert_eq!(Event::reply("r").kind(), EventKind::Reply);
        assert_eq!(Event::notification("n").kind(), EventKind::Notification);
    }

    #[test]
    fn params_typed_access() {
        let e = Event::notification("n")
            .with_param("f", 1.5)
            .with_param("s", "text")
            .with_param("i", 3i64);
        assert_eq!(e.param_f64("f"), Some(1.5));
        assert_eq!(e.param_f64("i"), Some(3.0));
        assert_eq!(e.param_text("s"), Some("text"));
        assert_eq!(e.param_f64("missing"), None);
    }

    #[test]
    fn params_overwrite_and_stay_name_ordered() {
        let mut e = Event::notification("n");
        for (k, v) in [("zz", 1i64), ("aa", 2), ("mm", 3), ("zz", 4), ("bb", 5)] {
            e = e.with_param(k, v);
        }
        let keys: Vec<&str> = e.params.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["aa", "bb", "mm", "zz"]);
        assert_eq!(e.param_f64("zz"), Some(4.0), "later insert overwrites");
    }

    #[test]
    fn params_spill_beyond_inline_capacity() {
        let mut e = Event::notification("n");
        for i in 0..10i64 {
            e = e.with_param(format!("p{i}"), i);
        }
        assert_eq!(e.params.len(), 10);
        for i in 0..10i64 {
            assert_eq!(e.param_f64(&format!("p{i}")), Some(i as f64));
        }
        let keys: Vec<&str> = e.params.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn size_override_and_estimate() {
        let small = Event::notification("n");
        assert!(small.size() > 0);
        let sized = Event::notification("n").with_size(4096);
        assert_eq!(sized.size(), 4096);
        let with_payload = Event::notification("n").with_payload(vec![0; 100]);
        assert!(with_payload.size() >= 100);
    }

    #[test]
    fn size_estimate_counts_params_without_allocating() {
        let bare = Event::notification("n");
        let with_params = Event::notification("n")
            .with_param("flag", true)
            .with_param("count", -1234i64)
            .with_param("ratio", 0.25)
            .with_param("label", "hello");
        assert!(with_params.size() > bare.size());
        // The integer estimate matches its decimal width exactly.
        assert_eq!(decimal_width(-1234), 5);
        assert_eq!(decimal_width(0), 1);
        assert_eq!(decimal_width(i64::MIN), 20);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut e = Event::request("cmd")
            .with_param("x", 2.0)
            .with_payload(vec![1, 2, 3])
            .with_size(99);
        e.set_source("sensor-1");
        let bytes = e.encode().unwrap();
        let back = Event::decode(&bytes).unwrap();
        assert_eq!(e, back);
        assert_eq!(back.source(), Some("sensor-1"));
    }

    #[test]
    fn json_codec_roundtrip_and_cross_codec_equivalence() {
        use crate::codec::WireCodec;
        let mut e = Event::reply("status")
            .with_param("ok", true)
            .with_param("detail", "fine")
            .with_payload(vec![9, 8, 7]);
        e.set_source("probe");
        let json = e.encode_with(WireCodec::Json).unwrap();
        let binary = e.encode_with(WireCodec::Binary).unwrap();
        assert_eq!(Event::decode(&json).unwrap(), e);
        assert_eq!(Event::decode(&binary).unwrap(), e);
        assert!(
            binary.len() <= json.len(),
            "binary ({}) must not exceed JSON ({})",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Event::decode(b"not json").is_err());
    }

    #[test]
    fn display_mentions_kind_name_source() {
        let mut e = Event::request("cmd");
        e.set_source("gui");
        assert_eq!(e.to_string(), "request 'cmd' from gui");
    }
}
