//! The meta-level components: `AdminComponent` and `DeployerComponent`.
//!
//! In Prism-MW an `ExtensibleComponent` "contains a reference to
//! Architecture", acting as "a meta-level component that can automatically
//! effect run-time changes to the system's architecture". Rust's ownership
//! rules make literal self-reference impossible, so the host runtime passes
//! the admin an exclusive borrow of the architecture on every activation —
//! the same capability, with aliasing checked at compile time.
//!
//! The redeployment protocol follows §4.3 of the paper:
//!
//! 1. The **deployer** sends each admin its new local configuration and the
//!    remote locations of components it must obtain ([`EV_CONFIGURE`]).
//! 2. Each **admin** diffs the configuration against its architecture and
//!    requests the components to be deployed locally from their current
//!    holders ([`EV_REQUEST`]); a host without a direct route sends its
//!    request through the deployer, which relays it ([`EV_MEDIATE`]).
//! 3. A holder detaches the requested component, serializes it, and ships it
//!    ([`EV_TRANSFER`]).
//! 4. The recipient reconstitutes the migrant, re-welds it, replays events
//!    buffered during the move, and confirms to the deployer ([`EV_ACK`]).
//!
//! All protocol traffic travels over reliable channels; only application
//! events are exposed to link loss. Reliable channels alone do not make the
//! protocol self-healing, so it is hardened for the faulty networks the
//! paper targets:
//!
//! * a host that *cannot* fulfil a request or transfer answers with an
//!   explicit [`EV_NACK`] (reason attached) instead of dropping it;
//! * every redeployment is **epoch-tagged**: acks and nacks from an earlier
//!   `effect` call are ignored, so overlapping redeployments cannot corrupt
//!   each other's progress accounting;
//! * the deployer keeps a **per-move deadline**; expiry re-resolves the
//!   holder from the freshest monitoring inventories and re-issues the move,
//!   up to a configurable attempt budget, after which the move is reported
//!   as failed in [`RedeploymentStatus::failed`] rather than pending
//!   forever.

use crate::architecture::Architecture;
use crate::brick::{BrickId, ComponentFactory};
use crate::durable::JournalRecord;
use crate::event::Event;
use crate::host::{HostConfig, HostServices, ADMIN_ADDRESS, DEPLOYER_ADDRESS};
use crate::monitor::{EventFrequencyMonitor, MonitoringSnapshot};
use crate::stability::StabilityGauge;
use redep_model::HostId;
use redep_netsim::{Duration, SimTime};
use redep_telemetry::{
    trace::{DOMAIN_DEPLOYER, DOMAIN_HOST},
    SpanIdGen, Telemetry, TraceCtx,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Event name: an admin ships a stable [`MonitoringSnapshot`] to the deployer.
pub const EV_REPORT: &str = "prism.monitor.report";
/// Event name: the deployer sends a host its new configuration.
pub const EV_CONFIGURE: &str = "prism.deploy.configure";
/// Event name: an admin requests a component from its current holder.
pub const EV_REQUEST: &str = "prism.deploy.request";
/// Event name: a holder ships a serialized component.
pub const EV_TRANSFER: &str = "prism.deploy.transfer";
/// Event name: a recipient confirms a completed move to the deployer.
pub const EV_ACK: &str = "prism.deploy.ack";
/// Event name: a host reports to the deployer that it cannot fulfil a
/// requested move (component absent, reconstruction failed, …).
pub const EV_NACK: &str = "prism.deploy.nack";
/// Event name: a control event relayed through the deployer because its
/// sender cannot reach the destination directly.
pub const EV_MEDIATE: &str = "prism.deploy.mediate";

/// Parameter: the relayed event's final destination host (integer id).
pub const P_FINAL_HOST: &str = "final_host";
/// Parameter: the relayed event's final destination component.
pub const P_FINAL_COMPONENT: &str = "final_component";
/// Parameter: the component a request/ack is about.
pub const P_COMPONENT: &str = "component";
/// Parameter: the host a request originates from.
pub const P_REQUESTER: &str = "requester";
/// Parameter: the redeployment epoch a protocol event belongs to.
pub const P_EPOCH: &str = "epoch";
/// Parameter: why a move could not be fulfilled (on [`EV_NACK`]).
pub const P_REASON: &str = "reason";

/// Body of an [`EV_CONFIGURE`] event.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub(crate) struct ConfigureDoc {
    /// The full new deployment directory: component → host.
    pub directory: BTreeMap<String, HostId>,
    /// Components this host must fetch, with their current holders.
    pub fetches: Vec<(String, HostId)>,
    /// The redeployment epoch this configuration belongs to.
    #[serde(default)]
    pub epoch: u64,
}

/// Body of an [`EV_TRANSFER`] event: one serialized migrant component.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub(crate) struct TransferDoc {
    pub name: String,
    pub type_name: String,
    pub state: Vec<u8>,
    #[serde(default)]
    pub epoch: u64,
}

/// Progress of an in-flight redeployment, as seen by the deployer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RedeploymentStatus {
    /// The epoch of the redeployment this status describes (bumped by every
    /// `effect` call; acks from earlier epochs are ignored).
    pub epoch: u64,
    /// Component moves the last `effect` call requested.
    pub requested: u64,
    /// Moves confirmed by recipient admins.
    pub confirmed: u64,
    /// Components still in flight.
    pub in_flight: Vec<String>,
    /// Components whose move exhausted its attempt budget, with the last
    /// failure reason. These are *settled* — the deployer has given up on
    /// them for this epoch — but not complete.
    pub failed: Vec<(String, String)>,
}

impl RedeploymentStatus {
    /// Whether every requested move has been confirmed.
    pub fn is_complete(&self) -> bool {
        self.in_flight.is_empty() && self.failed.is_empty()
    }

    /// Whether the deployer has stopped working on this epoch: every move
    /// either confirmed or given up on. A settled-but-incomplete epoch is
    /// what the framework's recovery policy reconciles.
    pub fn is_settled(&self) -> bool {
        self.in_flight.is_empty()
    }
}

/// The serde shape of [`AdminComponent::durable_blob`].
#[derive(Serialize, Deserialize, Default)]
struct AdminDurable {
    reliabilities: BTreeMap<HostId, f64>,
    reports_sent: u64,
    /// The last assembled [`MonitoringSnapshot`], pre-encoded.
    last_snapshot: Option<Vec<u8>>,
}

/// A [`TraceCtx`] flattened for serde (trace id, span id, parent span id).
type DurableCtx = (u64, u64, Option<u64>);

fn ctx_durable(ctx: Option<TraceCtx>) -> Option<DurableCtx> {
    ctx.map(|c| (c.trace_id, c.span_id, c.parent_id))
}

fn ctx_restore(ctx: Option<DurableCtx>) -> Option<TraceCtx> {
    ctx.map(|(trace_id, span_id, parent_id)| TraceCtx {
        trace_id,
        span_id,
        parent_id,
    })
}

/// A deployment command: where each named component should live.
pub type DeploymentCommand = BTreeMap<String, HostId>;

/// The per-host monitoring and effecting endpoint (the paper's
/// `AdminComponent`).
pub struct AdminComponent {
    host: HostId,
    /// Counts *named* interactions (local and remote) per component pair.
    interactions: EventFrequencyMonitor,
    freq_gauge: StabilityGauge,
    rel_gauge: StabilityGauge,
    latest_reliabilities: BTreeMap<HostId, f64>,
    reports_sent: u64,
    last_snapshot: Option<MonitoringSnapshot>,
    /// Allocates span ids for protocol hops handled on this host.
    tracer: SpanIdGen,
}

impl std::fmt::Debug for AdminComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminComponent")
            .field("host", &self.host)
            .field("reports_sent", &self.reports_sent)
            .finish()
    }
}

impl AdminComponent {
    pub(crate) fn new(host: HostId, config: &HostConfig) -> Self {
        AdminComponent {
            host,
            interactions: EventFrequencyMonitor::new(config.monitor_window),
            // Total event rate has no natural scale: judge it relatively.
            freq_gauge: StabilityGauge::new_relative(config.epsilon, config.stable_windows),
            rel_gauge: StabilityGauge::new(config.epsilon, config.stable_windows),
            latest_reliabilities: BTreeMap::new(),
            reports_sent: 0,
            last_snapshot: None,
            tracer: SpanIdGen::new(DOMAIN_HOST, host.raw()),
        }
    }

    /// Number of monitoring reports shipped to the deployer so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// The most recent snapshot this admin assembled (whether or not it was
    /// stable enough to ship).
    pub fn last_snapshot(&self) -> Option<&MonitoringSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// Latest per-peer reliability estimates.
    pub fn reliability_estimates(&self) -> &BTreeMap<HostId, f64> {
        &self.latest_reliabilities
    }

    /// Serializes the admin's durable state (persisted in every checkpoint
    /// and every `MonitorWindow` journal record). The stability gauges and
    /// the *open* window's raw interaction counts are deliberately volatile:
    /// the window in flight at a crash is lost, which is exactly what the
    /// recovery report's `MonitorWindow` not-completed verdict says.
    pub(crate) fn durable_blob(&self) -> Vec<u8> {
        let durable = AdminDurable {
            reliabilities: self.latest_reliabilities.clone(),
            reports_sent: self.reports_sent,
            last_snapshot: self.last_snapshot.as_ref().and_then(|s| s.encode().ok()),
        };
        serde_json::to_vec(&durable).expect("admin durable state serializes")
    }

    /// Restores the durable half of the admin from a [`Self::durable_blob`]
    /// (monitors and gauges restart empty). Malformed blobs are ignored.
    pub(crate) fn restore_durable(&mut self, blob: &[u8]) {
        let Ok(durable) = serde_json::from_slice::<AdminDurable>(blob) else {
            return;
        };
        self.latest_reliabilities = durable.reliabilities;
        self.reports_sent = durable.reports_sent;
        self.last_snapshot = durable
            .last_snapshot
            .and_then(|bytes| MonitoringSnapshot::decode(&bytes).ok());
    }

    /// Records one named interaction (called by the host runtime for every
    /// `send_to`, local or remote).
    pub(crate) fn observe_interaction(
        &mut self,
        src: Option<&str>,
        dst: &str,
        event: &Event,
        now: SimTime,
    ) {
        use crate::monitor::ConnectorMonitor;
        let src = src.unwrap_or("?");
        self.interactions.observe(src, dst, event, now);
    }

    /// Closes one monitoring window: rolls the interaction and reliability
    /// monitors, feeds the stability gauges, and — once the readings are
    /// stable — ships a [`MonitoringSnapshot`] to the deployer.
    pub(crate) fn on_monitor_window(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        app_connector: BrickId,
    ) {
        let now = services.now();

        // Platform-dependent halves: the connector tap and the ping probe.
        let named = self.interactions.roll_window(now);
        let bus = arch
            .monitor_mut::<EventFrequencyMonitor>(app_connector)
            .map(|m| m.roll_window(now))
            .unwrap_or_default();
        // Exponentially smooth the per-window reliability estimates: a
        // single window holds only a handful of ping samples, so the raw
        // ratio is heavily quantized (the platform-independent half of the
        // monitor "interprets … the monitored data").
        const EWMA_ALPHA: f64 = 0.3;
        for (peer, fresh) in services.probe.roll_window() {
            let smoothed = match self.latest_reliabilities.get(&peer) {
                Some(old) => (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * fresh,
                None => fresh,
            };
            self.latest_reliabilities.insert(peer, smoothed);
        }

        // Merge the two frequency sources (named sends + connector traffic),
        // canonicalizing pair order and aggregating raw counts so each
        // observed event contributes exactly once.
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut bytes: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut frequencies: BTreeMap<(String, String), f64> = BTreeMap::new();
        for window in [&named, &bus] {
            if window.window_secs <= 0.0 {
                continue;
            }
            for ((s, d), count) in &window.counts {
                let key = if s <= d {
                    (s.clone(), d.clone())
                } else {
                    (d.clone(), s.clone())
                };
                *counts.entry(key.clone()).or_insert(0) += count;
                *frequencies.entry(key.clone()).or_insert(0.0) +=
                    *count as f64 / window.window_secs;
                if let Some(b) = window.bytes.get(&(s.clone(), d.clone())) {
                    *bytes.entry(key).or_insert(0) += b;
                }
            }
        }
        let event_sizes: BTreeMap<(String, String), f64> = counts
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(key, c)| {
                let total = bytes.get(key).copied().unwrap_or(0);
                (key.clone(), total as f64 / *c as f64)
            })
            .collect();

        // Platform-independent half: ε-stability across windows.
        let total_rate: f64 = frequencies.values().sum();
        let mean_rel = if self.latest_reliabilities.is_empty() {
            1.0
        } else {
            self.latest_reliabilities.values().sum::<f64>() / self.latest_reliabilities.len() as f64
        };
        self.freq_gauge.push(total_rate);
        self.rel_gauge.push(mean_rel);

        let snapshot = MonitoringSnapshot {
            host: self.host,
            components: arch.component_inventory().into_iter().collect(),
            frequencies,
            event_sizes,
            reliabilities: self.latest_reliabilities.clone(),
            taken_at_secs: now.as_secs_f64(),
        };
        self.last_snapshot = Some(snapshot.clone());

        if self.freq_gauge.is_stable() && self.rel_gauge.is_stable() {
            let report = Event::notification(EV_REPORT)
                .with_payload(snapshot.encode().expect("snapshots serialize"));
            services.send_reliable(services.deployer_host(), DEPLOYER_ADDRESS, &report);
            self.reports_sent += 1;
        }
    }

    /// Handles a control event addressed to [`ADMIN_ADDRESS`].
    pub(crate) fn handle(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        factory: &mut ComponentFactory,
        app_connector: BrickId,
        event: &Event,
    ) {
        match event.name() {
            EV_CONFIGURE => self.on_configure(arch, services, event),
            EV_REQUEST => self.on_request(arch, services, event),
            EV_TRANSFER => self.on_transfer(arch, services, factory, app_connector, event),
            _ => {}
        }
    }

    fn on_configure(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        event: &Event,
    ) {
        let Ok(doc) = serde_json::from_slice::<ConfigureDoc>(event.payload()) else {
            return;
        };
        services.replace_directory(doc.directory);
        for (component, holder) in doc.fetches {
            // Each hop of the protocol opens its own child span under the
            // incoming event's context, so a journal reconstructs the full
            // configure → request → transfer → ack causal chain.
            let ctx = event
                .trace()
                .map(|parent| parent.child(self.tracer.next_id()));
            if arch.contains_component(&component) {
                // Already here (no-op move or retried configure after the
                // transfer landed); confirm immediately.
                send_ack(services, &component, doc.epoch, ctx);
                continue;
            }
            let mut request = Event::request(EV_REQUEST)
                .with_param(P_COMPONENT, component.as_str())
                .with_param(P_REQUESTER, self.host.raw() as i64)
                .with_param(P_EPOCH, doc.epoch as i64);
            if let Some(ctx) = ctx {
                request = request.with_trace(ctx);
            }
            services.send_reliable(holder, ADMIN_ADDRESS, &request);
        }
    }

    fn on_request(&mut self, arch: &mut Architecture, services: &mut HostServices, event: &Event) {
        let Some(component) = event.param_text(P_COMPONENT).map(str::to_owned) else {
            return;
        };
        let Some(requester) = event.param(P_REQUESTER).and_then(|v| v.as_i64()) else {
            return;
        };
        let epoch = event_epoch(event);
        let requester = HostId::new(requester as u32);
        let ctx = event
            .trace()
            .map(|parent| parent.child(self.tracer.next_id()));
        let Ok((type_name, state)) = arch.detach_component(&component) else {
            // Not here (already moved or never was). Silence would stall the
            // deployer's accounting forever; answer with an explicit nack so
            // it can re-resolve the holder or give the move up.
            send_nack(services, &component, epoch, "absent", ctx);
            return;
        };
        services.journal(JournalRecord::ComponentDetached {
            name: component.clone(),
        });
        let doc = TransferDoc {
            name: component,
            type_name,
            state,
            epoch,
        };
        let mut transfer = Event::reply(EV_TRANSFER)
            .with_payload(serde_json::to_vec(&doc).expect("transfer docs serialize"));
        if let Some(ctx) = ctx {
            transfer = transfer.with_trace(ctx);
        }
        services.send_reliable(requester, ADMIN_ADDRESS, &transfer);
    }

    fn on_transfer(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        factory: &mut ComponentFactory,
        app_connector: BrickId,
        event: &Event,
    ) {
        let Ok(doc) = serde_json::from_slice::<TransferDoc>(event.payload()) else {
            return;
        };
        let ctx = event
            .trace()
            .map(|parent| parent.child(self.tracer.next_id()));
        let Ok(behavior) = factory.build(&doc.type_name, &doc.state) else {
            // The migrant cannot be reconstituted here (unknown type,
            // corrupt state): report instead of losing the move silently.
            send_nack(services, &doc.name, doc.epoch, "build", ctx);
            return;
        };
        let Ok(id) = arch.add_boxed_component(doc.name.clone(), behavior) else {
            // Duplicate arrival of the same migrant (a retry raced the
            // original transfer). The component is here — re-confirm so a
            // lost ack cannot stall the deployer.
            send_ack(services, &doc.name, doc.epoch, ctx);
            return;
        };
        let _ = arch.weld(id, app_connector);
        services.journal(JournalRecord::ComponentAttached {
            name: doc.name.clone(),
            type_name: doc.type_name.clone(),
            state: doc.state.clone(),
        });
        services.directory_set(doc.name.clone(), self.host);
        // Replay events buffered while the component was in flight. Each
        // replayed event is journaled like any other local delivery, so
        // crash recovery re-applies it to the migrant's recovered state.
        for buffered in services.take_buffered(&doc.name) {
            services.journal(JournalRecord::Delivery {
                component: doc.name.clone(),
                event: buffered.encode().expect("events serialize"),
            });
            let _ = arch.publish(&doc.name, buffered);
        }
        send_ack(services, &doc.name, doc.epoch, ctx);
    }
}

/// Confirms one landed move to the deployer.
fn send_ack(services: &mut HostServices, component: &str, epoch: u64, ctx: Option<TraceCtx>) {
    let mut ack = Event::notification(EV_ACK)
        .with_param(P_COMPONENT, component)
        .with_param(P_EPOCH, epoch as i64);
    if let Some(ctx) = ctx {
        ack = ack.with_trace(ctx);
    }
    services.send_reliable(services.deployer_host(), DEPLOYER_ADDRESS, &ack);
}

/// Reports one unfulfillable move to the deployer.
fn send_nack(
    services: &mut HostServices,
    component: &str,
    epoch: u64,
    reason: &str,
    ctx: Option<TraceCtx>,
) {
    let mut nack = Event::notification(EV_NACK)
        .with_param(P_COMPONENT, component)
        .with_param(P_EPOCH, epoch as i64)
        .with_param(P_REASON, reason);
    if let Some(ctx) = ctx {
        nack = nack.with_trace(ctx);
    }
    services.send_reliable(services.deployer_host(), DEPLOYER_ADDRESS, &nack);
}

/// Reads the epoch parameter (0 for pre-epoch peers and direct host-to-host
/// requests outside any deployer-run redeployment).
fn event_epoch(event: &Event) -> u64 {
    event
        .param(P_EPOCH)
        .and_then(|v| v.as_i64())
        .map(|e| e as u64)
        .unwrap_or(0)
}

/// One move the deployer is still responsible for.
#[derive(Clone, PartialEq, Eq, Debug)]
struct PendingMove {
    /// Where the component must end up.
    dest: HostId,
    /// The holder the last attempt requested it from.
    holder: HostId,
    /// Attempts so far (the initial `effect` issue counts as attempt 1).
    attempts: u32,
    /// When the current attempt expires.
    deadline: SimTime,
    /// Trace context of this move's span: the `.open` marker and the settle
    /// record share its span id, so a journal merges them into one span.
    ctx: Option<TraceCtx>,
    /// When the move was issued (the span's start time).
    started: SimTime,
    /// Whether the span was already settled (framework abandon at
    /// reconcile); settling is idempotent per move.
    settled: bool,
}

/// The serde shape of one [`PendingMove`] inside [`DeployerDurable`].
#[derive(Serialize, Deserialize)]
struct PendingMoveDurable {
    dest: HostId,
    holder: HostId,
    attempts: u32,
    deadline_us: u64,
    started_us: u64,
    settled: bool,
    ctx: Option<DurableCtx>,
}

/// The serde shape of [`DeployerComponent::durable_blob`]: everything the
/// deployer needs to keep steering the *current epoch* across a crash.
/// Replacing the whole blob on every deployer transition is coarse on
/// purpose — transitions are rare, and a full snapshot is simpler to get
/// exactly right than per-field deltas.
#[derive(Serialize, Deserialize, Default)]
struct DeployerDurable {
    epoch: u64,
    requested: u64,
    confirmed: u64,
    target_directory: BTreeMap<String, HostId>,
    known_hosts: Vec<HostId>,
    /// Encoded [`MonitoringSnapshot`]s (each names its own host).
    snapshots: Vec<Vec<u8>>,
    pending: Vec<(String, PendingMoveDurable)>,
    failed: Vec<(String, String)>,
    failed_ctx: Vec<(String, DurableCtx)>,
    epoch_ctx: Option<DurableCtx>,
}

/// The master-host deployer (the paper's `DeployerComponent` — the
/// `ExtensibleComponent` with the `Deployer` implementation of `IAdmin`).
pub struct DeployerComponent {
    host: HostId,
    snapshots: BTreeMap<HostId, MonitoringSnapshot>,
    /// Hosts the deployer has ever heard of (reports, past move sources);
    /// all of them receive directory refreshes.
    known_hosts: BTreeSet<HostId>,
    /// Moves of the current epoch still awaiting confirmation.
    pending: BTreeMap<String, PendingMove>,
    /// Moves of the current epoch given up on, with the last failure reason.
    failed: BTreeMap<String, String>,
    /// The directory the current epoch is steering towards (re-sent with
    /// every retry so late joiners converge on the same view).
    target_directory: BTreeMap<String, HostId>,
    epoch: u64,
    requested: u64,
    confirmed: u64,
    move_deadline: Duration,
    max_move_attempts: u32,
    /// Allocates the per-move and per-configure span ids.
    tracer: SpanIdGen,
    /// The framework span the current epoch's moves are children of.
    epoch_ctx: Option<TraceCtx>,
    /// Trace contexts of this epoch's failed moves (the move is out of
    /// `pending`, but its span id is still needed for `prism.migration.failed`).
    failed_ctx: BTreeMap<String, TraceCtx>,
    /// Where move open/settle records go (a disabled no-op sink until the
    /// host installs its telemetry handle).
    telemetry: Telemetry,
}

impl std::fmt::Debug for DeployerComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployerComponent")
            .field("host", &self.host)
            .field("snapshots", &self.snapshots.len())
            .field("epoch", &self.epoch)
            .field("pending", &self.pending.len())
            .field("failed", &self.failed.len())
            .finish()
    }
}

impl DeployerComponent {
    pub(crate) fn new(host: HostId, config: &HostConfig) -> Self {
        DeployerComponent {
            host,
            snapshots: BTreeMap::new(),
            known_hosts: BTreeSet::new(),
            pending: BTreeMap::new(),
            failed: BTreeMap::new(),
            target_directory: BTreeMap::new(),
            epoch: 0,
            requested: 0,
            confirmed: 0,
            move_deadline: config.move_deadline,
            max_move_attempts: config.max_move_attempts,
            tracer: SpanIdGen::new(DOMAIN_DEPLOYER, host.raw()),
            epoch_ctx: None,
            failed_ctx: BTreeMap::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs the telemetry handle move open/settle records are journaled
    /// through (the host runtime forwards its own handle here).
    pub(crate) fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The trace context of a move still pending — or already failed — in
    /// the current epoch (for the host runtime's retry/failure telemetry).
    pub(crate) fn move_ctx(&self, component: &str) -> Option<TraceCtx> {
        self.pending
            .get(component)
            .and_then(|mv| mv.ctx)
            .or_else(|| self.failed_ctx.get(component).copied())
    }

    /// Emits the settle record of one move span. Outcomes: `confirmed`,
    /// `failed`, `superseded`, `abandoned`.
    fn settle_move(&self, component: &str, mv: &PendingMove, now: SimTime, outcome: &str) {
        let Some(ctx) = mv.ctx else { return };
        if mv.settled {
            return;
        }
        self.telemetry
            .span(
                "prism.migration.move",
                mv.started.as_micros(),
                now.as_micros(),
            )
            .field("component", component.to_owned())
            .field("to", mv.dest.raw())
            .field("attempts", mv.attempts)
            .field("outcome", outcome.to_owned())
            .trace(ctx)
            .emit();
    }

    /// Settles every still-open move span as `abandoned` — called by a
    /// framework that reconciles an incomplete epoch, so no run ends with
    /// unsettled move spans. Accounting (`status()`) is untouched.
    pub(crate) fn abandon_pending(&mut self, now: SimTime) {
        let components: Vec<String> = self.pending.keys().cloned().collect();
        for component in components {
            let mv = self.pending[&component].clone();
            self.settle_move(&component, &mv, now, "abandoned");
            self.pending
                .get_mut(&component)
                .expect("still pending")
                .settled = true;
        }
    }

    /// Serializes the deployer's durable state (journaled after every
    /// deployer transition and persisted in checkpoints). The per-move
    /// deadline and attempt budget come from [`HostConfig`], and the span-id
    /// allocator restarts deterministically, so neither is persisted.
    pub(crate) fn durable_blob(&self) -> Vec<u8> {
        let durable = DeployerDurable {
            epoch: self.epoch,
            requested: self.requested,
            confirmed: self.confirmed,
            target_directory: self.target_directory.clone(),
            known_hosts: self.known_hosts.iter().copied().collect(),
            snapshots: self
                .snapshots
                .values()
                .filter_map(|s| s.encode().ok())
                .collect(),
            pending: self
                .pending
                .iter()
                .map(|(component, mv)| {
                    (
                        component.clone(),
                        PendingMoveDurable {
                            dest: mv.dest,
                            holder: mv.holder,
                            attempts: mv.attempts,
                            deadline_us: mv.deadline.as_micros(),
                            started_us: mv.started.as_micros(),
                            settled: mv.settled,
                            ctx: ctx_durable(mv.ctx),
                        },
                    )
                })
                .collect(),
            failed: self
                .failed
                .iter()
                .map(|(c, r)| (c.clone(), r.clone()))
                .collect(),
            failed_ctx: self
                .failed_ctx
                .iter()
                .filter_map(|(c, ctx)| ctx_durable(Some(*ctx)).map(|d| (c.clone(), d)))
                .collect(),
            epoch_ctx: ctx_durable(self.epoch_ctx),
        };
        serde_json::to_vec(&durable).expect("deployer durable state serializes")
    }

    /// Restores the deployer from a [`Self::durable_blob`]. Malformed blobs
    /// are ignored (the deployer then restarts with an empty epoch 0, and
    /// the recovery report's not-completed verdicts say what was dropped).
    pub(crate) fn restore_durable(&mut self, blob: &[u8]) {
        let Ok(durable) = serde_json::from_slice::<DeployerDurable>(blob) else {
            return;
        };
        self.epoch = durable.epoch;
        self.requested = durable.requested;
        self.confirmed = durable.confirmed;
        self.target_directory = durable.target_directory;
        self.known_hosts = durable.known_hosts.into_iter().collect();
        self.snapshots = durable
            .snapshots
            .iter()
            .filter_map(|bytes| MonitoringSnapshot::decode(bytes).ok())
            .map(|s| (s.host, s))
            .collect();
        self.pending = durable
            .pending
            .into_iter()
            .map(|(component, mv)| {
                (
                    component,
                    PendingMove {
                        dest: mv.dest,
                        holder: mv.holder,
                        attempts: mv.attempts,
                        deadline: SimTime::from_micros(mv.deadline_us),
                        started: SimTime::from_micros(mv.started_us),
                        settled: mv.settled,
                        ctx: ctx_restore(mv.ctx),
                    },
                )
            })
            .collect();
        self.failed = durable.failed.into_iter().collect();
        self.failed_ctx = durable
            .failed_ctx
            .into_iter()
            .filter_map(|(c, d)| ctx_restore(Some(d)).map(|ctx| (c, ctx)))
            .collect();
        self.epoch_ctx = ctx_restore(durable.epoch_ctx);
    }

    /// Monitoring snapshots collected from every reporting host.
    pub fn snapshots(&self) -> &BTreeMap<HostId, MonitoringSnapshot> {
        &self.snapshots
    }

    /// Progress of the redeployment issued by the last `effect` call.
    pub fn status(&self) -> RedeploymentStatus {
        RedeploymentStatus {
            epoch: self.epoch,
            requested: self.requested,
            confirmed: self.confirmed,
            in_flight: self.pending.keys().cloned().collect(),
            failed: self
                .failed
                .iter()
                .map(|(c, r)| (c.clone(), r.clone()))
                .collect(),
        }
    }

    /// Issues a redeployment: computes per-host configurations from the
    /// desired `target` and the current directory, and sends every admin its
    /// new configuration (including the refreshed global directory).
    ///
    /// Every call opens a fresh epoch: progress counters reset, moves still
    /// pending from an earlier epoch are dropped (their late acks will be
    /// ignored by the epoch check), and `status()` describes only this call.
    ///
    /// `parent` is the trace context the new epoch's move spans hang off
    /// (typically a framework's redeployment span); `None` leaves the
    /// protocol untraced.
    pub(crate) fn effect(
        &mut self,
        services: &mut HostServices,
        target: DeploymentCommand,
        parent: Option<TraceCtx>,
    ) {
        let current = services.directory().clone();
        let now = services.now();
        // Moves still open from the previous epoch are dropped; settle their
        // spans so the journal shows *why* they never confirmed.
        let superseded: Vec<(String, PendingMove)> = self
            .pending
            .iter()
            .map(|(c, m)| (c.clone(), m.clone()))
            .collect();
        for (component, mv) in superseded {
            self.settle_move(&component, &mv, now, "superseded");
        }
        self.epoch += 1;
        self.epoch_ctx = parent;
        self.pending.clear();
        self.failed.clear();
        self.failed_ctx.clear();
        self.requested = 0;
        self.confirmed = 0;
        let mut fetches_by_host: BTreeMap<HostId, Vec<(String, HostId)>> = BTreeMap::new();
        let mut new_directory = current.clone();
        for (component, to) in &target {
            new_directory.insert(component.clone(), *to);
            match current.get(component) {
                Some(from) if from == to => {}
                Some(from) => {
                    fetches_by_host
                        .entry(*to)
                        .or_default()
                        .push((component.clone(), *from));
                    let ctx = parent.map(|p| p.child(self.tracer.next_id()));
                    if let Some(ctx) = ctx {
                        // The `.open` marker shares the settle record's span
                        // id; a journal with an open marker and no settle is
                        // a trace-invariant violation.
                        self.telemetry
                            .event("prism.migration.move.open", now.as_micros())
                            .field("component", component.clone())
                            .field("from", from.raw())
                            .field("to", to.raw())
                            .field("epoch", self.epoch)
                            .trace(ctx)
                            .emit();
                    }
                    self.pending.insert(
                        component.clone(),
                        PendingMove {
                            dest: *to,
                            holder: *from,
                            attempts: 1,
                            deadline: now + self.move_deadline,
                            ctx,
                            started: now,
                            settled: false,
                        },
                    );
                    self.requested += 1;
                    // The source host may hold nothing else afterwards, yet
                    // it must learn the new directory to chase stale events.
                    self.known_hosts.insert(*from);
                }
                None => {}
            }
        }
        self.target_directory = new_directory.clone();
        // Every known host gets the new directory — component holders, but
        // also bystanders (known from their monitoring reports), whose
        // stale directories would otherwise misroute application events.
        let mut all_hosts: BTreeSet<HostId> = new_directory.values().copied().collect();
        all_hosts.extend(self.known_hosts.iter().copied());
        all_hosts.insert(self.host);
        for host in all_hosts {
            let doc = ConfigureDoc {
                directory: new_directory.clone(),
                fetches: fetches_by_host.remove(&host).unwrap_or_default(),
                epoch: self.epoch,
            };
            let mut configure = Event::request(EV_CONFIGURE)
                .with_payload(serde_json::to_vec(&doc).expect("configure docs serialize"));
            // One configure-wave span per host, under the epoch's framework
            // span; remote admins open further children off it per hop.
            if let Some(p) = parent {
                configure = configure.with_trace(p.child(self.tracer.next_id()));
            }
            services.send_reliable(host, ADMIN_ADDRESS, &configure);
        }
    }

    /// Expires overdue moves: each one is re-issued with the holder
    /// re-resolved from the freshest component inventories, until its
    /// attempt budget runs out and it lands in `failed`. Returns
    /// `(retried, newly_failed)` for the caller's telemetry.
    pub(crate) fn on_deploy_tick(
        &mut self,
        services: &mut HostServices,
    ) -> (Vec<String>, Vec<(String, String)>) {
        let now = services.now();
        let overdue: Vec<String> = self
            .pending
            .iter()
            .filter(|(_, mv)| mv.deadline <= now)
            .map(|(c, _)| c.clone())
            .collect();
        let mut retried = Vec::new();
        let mut newly_failed = Vec::new();
        for component in overdue {
            if self.retry_move(services, &component, "timeout") {
                retried.push(component);
            } else {
                let reason = self
                    .failed
                    .get(&component)
                    .cloned()
                    .unwrap_or_else(|| "timeout".to_owned());
                newly_failed.push((component, reason));
            }
        }
        (retried, newly_failed)
    }

    /// Re-issues one pending move (or gives it up when its budget is spent).
    /// Returns `true` if a retry went out.
    fn retry_move(&mut self, services: &mut HostServices, component: &str, reason: &str) -> bool {
        let Some(mv) = self.pending.get_mut(component) else {
            return false;
        };
        if mv.attempts >= self.max_move_attempts {
            let mv = self.pending.remove(component).expect("just looked up");
            self.settle_move(component, &mv, services.now(), "failed");
            if let Some(ctx) = mv.ctx {
                self.failed_ctx.insert(component.to_owned(), ctx);
            }
            self.failed.insert(component.to_owned(), reason.to_owned());
            return false;
        }
        mv.attempts += 1;
        mv.deadline = services.now() + self.move_deadline;
        // Re-resolve the holder from the freshest inventories: the paper's
        // monitoring reports double as a live component directory, so a
        // component that moved (or whose holder crashed and restarted
        // elsewhere) is chased to wherever it actually lives now.
        let mut holder = mv.holder;
        let mut freshest = f64::NEG_INFINITY;
        for (host, snapshot) in self.snapshots.iter() {
            if snapshot.taken_at_secs > freshest && snapshot.components.contains_key(component) {
                holder = *host;
                freshest = snapshot.taken_at_secs;
            }
        }
        mv.holder = holder;
        let dest = mv.dest;
        let ctx = mv.ctx;
        let doc = ConfigureDoc {
            directory: self.target_directory.clone(),
            fetches: vec![(component.to_owned(), holder)],
            epoch: self.epoch,
        };
        let mut configure = Event::request(EV_CONFIGURE)
            .with_payload(serde_json::to_vec(&doc).expect("configure docs serialize"));
        // A retry's configure carries the *move* span itself, so every
        // fault-induced re-issue chains back to the move it serves.
        if let Some(ctx) = ctx {
            configure = configure.with_trace(ctx);
        }
        services.send_reliable(dest, ADMIN_ADDRESS, &configure);
        true
    }

    /// Handles a control event addressed to [`DEPLOYER_ADDRESS`].
    pub(crate) fn handle(&mut self, services: &mut HostServices, event: &Event) {
        match event.name() {
            EV_REPORT => {
                if let Ok(snapshot) = MonitoringSnapshot::decode(event.payload()) {
                    self.known_hosts.insert(snapshot.host);
                    self.snapshots.insert(snapshot.host, snapshot);
                }
            }
            EV_ACK => {
                if event_epoch(event) != self.epoch {
                    return; // stale ack from a superseded redeployment
                }
                if let Some(component) = event.param_text(P_COMPONENT) {
                    if let Some(mv) = self.pending.remove(component) {
                        self.settle_move(component, &mv, services.now(), "confirmed");
                        self.confirmed += 1;
                        // A confirmed arrival supersedes any earlier verdict
                        // a racing nack may have recorded.
                        self.failed.remove(component);
                        self.failed_ctx.remove(component);
                    }
                }
            }
            EV_NACK => {
                if event_epoch(event) != self.epoch {
                    return;
                }
                let Some(component) = event.param_text(P_COMPONENT).map(str::to_owned) else {
                    return;
                };
                let reason = event
                    .param_text(P_REASON)
                    .unwrap_or("unspecified")
                    .to_owned();
                // An explicit refusal: retry immediately (with holder
                // re-resolution) instead of waiting out the deadline.
                self.retry_move(services, &component, &reason);
            }
            EV_MEDIATE => {
                let (Some(host), Some(component)) = (
                    event.param(P_FINAL_HOST).and_then(|v| v.as_i64()),
                    event.param_text(P_FINAL_COMPONENT).map(str::to_owned),
                ) else {
                    return;
                };
                if let Ok(inner) = Event::decode(event.payload()) {
                    services.send_reliable(HostId::new(host as u32), &component, &inner);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_doc_roundtrip() {
        let mut doc = ConfigureDoc::default();
        doc.directory.insert("gui".into(), HostId::new(1));
        doc.fetches.push(("tracker".into(), HostId::new(2)));
        let bytes = serde_json::to_vec(&doc).unwrap();
        let back: ConfigureDoc = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn transfer_doc_roundtrip() {
        let doc = TransferDoc {
            name: "tracker".into(),
            type_name: "workload".into(),
            state: vec![1, 2, 3],
            epoch: 4,
        };
        let bytes = serde_json::to_vec(&doc).unwrap();
        let back: TransferDoc = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(doc, back);
    }

    fn deployer() -> DeployerComponent {
        DeployerComponent::new(HostId::new(0), &HostConfig::default())
    }

    fn pending_move(dest: u32, holder: u32, attempts: u32) -> PendingMove {
        PendingMove {
            dest: HostId::new(dest),
            holder: HostId::new(holder),
            attempts,
            // Already overdue at the test services' t=0 clock.
            deadline: SimTime::ZERO,
            ctx: None,
            started: SimTime::ZERO,
            settled: false,
        }
    }

    #[test]
    fn status_reports_completion() {
        let mut d = deployer();
        assert!(d.status().is_complete());
        d.pending.insert("x".into(), pending_move(1, 2, 1));
        d.requested = 1;
        assert!(!d.status().is_complete());
        d.handle(
            &mut dummy_services(),
            &Event::notification(EV_ACK)
                .with_param(P_COMPONENT, "x")
                .with_param(P_EPOCH, 0i64),
        );
        let s = d.status();
        assert!(s.is_complete());
        assert_eq!(s.confirmed, 1);
    }

    #[test]
    fn stale_epoch_acks_are_ignored() {
        let mut d = deployer();
        d.epoch = 3;
        d.pending.insert("x".into(), pending_move(1, 2, 1));
        d.requested = 1;
        // An ack from epoch 2 (a superseded redeployment) must not count.
        d.handle(
            &mut dummy_services(),
            &Event::notification(EV_ACK)
                .with_param(P_COMPONENT, "x")
                .with_param(P_EPOCH, 2i64),
        );
        assert_eq!(d.status().confirmed, 0);
        assert!(!d.status().is_complete());
        // The current epoch's ack does.
        d.handle(
            &mut dummy_services(),
            &Event::notification(EV_ACK)
                .with_param(P_COMPONENT, "x")
                .with_param(P_EPOCH, 3i64),
        );
        assert_eq!(d.status().confirmed, 1);
        assert!(d.status().is_complete());
    }

    #[test]
    fn nack_retries_until_budget_then_fails_the_move() {
        let mut d = deployer();
        let mut services = dummy_services();
        let budget = d.max_move_attempts;
        d.pending.insert("x".into(), pending_move(1, 2, 1));
        d.requested = 1;
        let nack = Event::notification(EV_NACK)
            .with_param(P_COMPONENT, "x")
            .with_param(P_EPOCH, 0i64)
            .with_param(P_REASON, "absent");
        for _ in 1..budget {
            d.handle(&mut services, &nack);
            assert!(d.pending.contains_key("x"), "retry should keep it pending");
        }
        d.handle(&mut services, &nack);
        assert!(d.pending.is_empty());
        let s = d.status();
        assert!(s.is_settled(), "given-up move settles the epoch");
        assert!(!s.is_complete(), "…but does not complete it");
        assert_eq!(s.failed, vec![("x".to_owned(), "absent".to_owned())]);
    }

    #[test]
    fn deadline_expiry_reissues_with_reresolved_holder() {
        let mut d = deployer();
        let mut services = dummy_services();
        d.pending.insert("x".into(), pending_move(1, 2, 1));
        // A fresh inventory shows the component actually lives on host 5.
        let snap = MonitoringSnapshot {
            host: HostId::new(5),
            components: [("x".to_owned(), "workload".to_owned())].into(),
            taken_at_secs: 9.0,
            ..MonitoringSnapshot::default()
        };
        d.handle(
            &mut services,
            &Event::notification(EV_REPORT).with_payload(snap.encode().unwrap()),
        );
        let (retried, failed) = d.on_deploy_tick(&mut services);
        assert_eq!(retried, vec!["x".to_owned()]);
        assert!(failed.is_empty());
        assert_eq!(d.pending["x"].holder, HostId::new(5));
        assert_eq!(d.pending["x"].attempts, 2);
    }

    #[test]
    fn effect_opens_a_fresh_epoch() {
        let mut d = deployer();
        let mut services = dummy_services();
        services.directory_set("x", HostId::new(1));
        d.effect(
            &mut services,
            [("x".to_owned(), HostId::new(2))].into(),
            None,
        );
        assert_eq!(d.status().epoch, 1);
        assert_eq!(d.status().requested, 1);
        // Leftover state must not leak into the next call.
        d.failed.insert("ghost".into(), "timeout".into());
        d.confirmed = 7;
        d.effect(
            &mut services,
            [("x".to_owned(), HostId::new(3))].into(),
            None,
        );
        let s = d.status();
        assert_eq!(s.epoch, 2);
        assert_eq!(s.requested, 1);
        assert_eq!(s.confirmed, 0);
        assert!(s.failed.is_empty());
    }

    #[test]
    fn report_events_populate_snapshots() {
        let mut d = deployer();
        let snap = MonitoringSnapshot {
            host: HostId::new(3),
            ..MonitoringSnapshot::default()
        };
        let report = Event::notification(EV_REPORT).with_payload(snap.encode().unwrap());
        d.handle(&mut dummy_services(), &report);
        assert_eq!(d.snapshots().len(), 1);
        assert!(d.snapshots().contains_key(&HostId::new(3)));
    }

    fn dummy_services() -> HostServices {
        // Accessing the private constructor through the crate namespace.
        crate::host::test_support::services(HostId::new(0))
    }
}
