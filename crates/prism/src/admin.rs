//! The meta-level components: `AdminComponent` and `DeployerComponent`.
//!
//! In Prism-MW an `ExtensibleComponent` "contains a reference to
//! Architecture", acting as "a meta-level component that can automatically
//! effect run-time changes to the system's architecture". Rust's ownership
//! rules make literal self-reference impossible, so the host runtime passes
//! the admin an exclusive borrow of the architecture on every activation —
//! the same capability, with aliasing checked at compile time.
//!
//! The redeployment protocol follows §4.3 of the paper:
//!
//! 1. The **deployer** sends each admin its new local configuration and the
//!    remote locations of components it must obtain ([`EV_CONFIGURE`]).
//! 2. Each **admin** diffs the configuration against its architecture and
//!    requests the components to be deployed locally from their current
//!    holders ([`EV_REQUEST`]); unreachable holders are mediated through the
//!    deployer ([`EV_MEDIATE`]).
//! 3. A holder detaches the requested component, serializes it, and ships it
//!    ([`EV_TRANSFER`]).
//! 4. The recipient reconstitutes the migrant, re-welds it, replays events
//!    buffered during the move, and confirms to the deployer ([`EV_ACK`]).
//!
//! All protocol traffic travels over reliable channels; only application
//! events are exposed to link loss.

use crate::architecture::Architecture;
use crate::brick::{BrickId, ComponentFactory};
use crate::event::Event;
use crate::host::{HostConfig, HostServices, ADMIN_ADDRESS, DEPLOYER_ADDRESS};
use crate::monitor::{EventFrequencyMonitor, MonitoringSnapshot};
use crate::stability::StabilityGauge;
use redep_model::HostId;
use redep_netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Event name: an admin ships a stable [`MonitoringSnapshot`] to the deployer.
pub const EV_REPORT: &str = "prism.monitor.report";
/// Event name: the deployer sends a host its new configuration.
pub const EV_CONFIGURE: &str = "prism.deploy.configure";
/// Event name: an admin requests a component from its current holder.
pub const EV_REQUEST: &str = "prism.deploy.request";
/// Event name: a holder ships a serialized component.
pub const EV_TRANSFER: &str = "prism.deploy.transfer";
/// Event name: a recipient confirms a completed move to the deployer.
pub const EV_ACK: &str = "prism.deploy.ack";
/// Event name: a control event relayed through the deployer because its
/// sender cannot reach the destination directly.
pub const EV_MEDIATE: &str = "prism.deploy.mediate";

/// Parameter: the relayed event's final destination host (integer id).
pub const P_FINAL_HOST: &str = "final_host";
/// Parameter: the relayed event's final destination component.
pub const P_FINAL_COMPONENT: &str = "final_component";
/// Parameter: the component a request/ack is about.
pub const P_COMPONENT: &str = "component";
/// Parameter: the host a request originates from.
pub const P_REQUESTER: &str = "requester";

/// Body of an [`EV_CONFIGURE`] event.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub(crate) struct ConfigureDoc {
    /// The full new deployment directory: component → host.
    pub directory: BTreeMap<String, HostId>,
    /// Components this host must fetch, with their current holders.
    pub fetches: Vec<(String, HostId)>,
}

/// Body of an [`EV_TRANSFER`] event: one serialized migrant component.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub(crate) struct TransferDoc {
    pub name: String,
    pub type_name: String,
    pub state: Vec<u8>,
}

/// Progress of an in-flight redeployment, as seen by the deployer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RedeploymentStatus {
    /// Component moves the last `effect` call requested.
    pub requested: u64,
    /// Moves confirmed by recipient admins.
    pub confirmed: u64,
    /// Components still in flight.
    pub in_flight: Vec<String>,
}

impl RedeploymentStatus {
    /// Whether every requested move has been confirmed.
    pub fn is_complete(&self) -> bool {
        self.in_flight.is_empty()
    }
}

/// A deployment command: where each named component should live.
pub type DeploymentCommand = BTreeMap<String, HostId>;

/// The per-host monitoring and effecting endpoint (the paper's
/// `AdminComponent`).
pub struct AdminComponent {
    host: HostId,
    /// Counts *named* interactions (local and remote) per component pair.
    interactions: EventFrequencyMonitor,
    freq_gauge: StabilityGauge,
    rel_gauge: StabilityGauge,
    latest_reliabilities: BTreeMap<HostId, f64>,
    reports_sent: u64,
    last_snapshot: Option<MonitoringSnapshot>,
}

impl std::fmt::Debug for AdminComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminComponent")
            .field("host", &self.host)
            .field("reports_sent", &self.reports_sent)
            .finish()
    }
}

impl AdminComponent {
    pub(crate) fn new(host: HostId, config: &HostConfig) -> Self {
        AdminComponent {
            host,
            interactions: EventFrequencyMonitor::new(config.monitor_window),
            // Total event rate has no natural scale: judge it relatively.
            freq_gauge: StabilityGauge::new_relative(config.epsilon, config.stable_windows),
            rel_gauge: StabilityGauge::new(config.epsilon, config.stable_windows),
            latest_reliabilities: BTreeMap::new(),
            reports_sent: 0,
            last_snapshot: None,
        }
    }

    /// Number of monitoring reports shipped to the deployer so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// The most recent snapshot this admin assembled (whether or not it was
    /// stable enough to ship).
    pub fn last_snapshot(&self) -> Option<&MonitoringSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// Latest per-peer reliability estimates.
    pub fn reliability_estimates(&self) -> &BTreeMap<HostId, f64> {
        &self.latest_reliabilities
    }

    /// Records one named interaction (called by the host runtime for every
    /// `send_to`, local or remote).
    pub(crate) fn observe_interaction(
        &mut self,
        src: Option<&str>,
        dst: &str,
        event: &Event,
        now: SimTime,
    ) {
        use crate::monitor::ConnectorMonitor;
        let src = src.unwrap_or("?");
        self.interactions.observe(src, dst, event, now);
    }

    /// Closes one monitoring window: rolls the interaction and reliability
    /// monitors, feeds the stability gauges, and — once the readings are
    /// stable — ships a [`MonitoringSnapshot`] to the deployer.
    pub(crate) fn on_monitor_window(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        app_connector: BrickId,
    ) {
        let now = services.now();

        // Platform-dependent halves: the connector tap and the ping probe.
        let named = self.interactions.roll_window(now);
        let bus = arch
            .monitor_mut::<EventFrequencyMonitor>(app_connector)
            .map(|m| m.roll_window(now))
            .unwrap_or_default();
        // Exponentially smooth the per-window reliability estimates: a
        // single window holds only a handful of ping samples, so the raw
        // ratio is heavily quantized (the platform-independent half of the
        // monitor "interprets … the monitored data").
        const EWMA_ALPHA: f64 = 0.3;
        for (peer, fresh) in services.probe.roll_window() {
            let smoothed = match self.latest_reliabilities.get(&peer) {
                Some(old) => (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * fresh,
                None => fresh,
            };
            self.latest_reliabilities.insert(peer, smoothed);
        }

        // Merge the two frequency sources (named sends + connector traffic),
        // canonicalizing pair order and aggregating raw counts so each
        // observed event contributes exactly once.
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut bytes: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut frequencies: BTreeMap<(String, String), f64> = BTreeMap::new();
        for window in [&named, &bus] {
            if window.window_secs <= 0.0 {
                continue;
            }
            for ((s, d), count) in &window.counts {
                let key = if s <= d {
                    (s.clone(), d.clone())
                } else {
                    (d.clone(), s.clone())
                };
                *counts.entry(key.clone()).or_insert(0) += count;
                *frequencies.entry(key.clone()).or_insert(0.0) +=
                    *count as f64 / window.window_secs;
                if let Some(b) = window.bytes.get(&(s.clone(), d.clone())) {
                    *bytes.entry(key).or_insert(0) += b;
                }
            }
        }
        let event_sizes: BTreeMap<(String, String), f64> = counts
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(key, c)| {
                let total = bytes.get(key).copied().unwrap_or(0);
                (key.clone(), total as f64 / *c as f64)
            })
            .collect();

        // Platform-independent half: ε-stability across windows.
        let total_rate: f64 = frequencies.values().sum();
        let mean_rel = if self.latest_reliabilities.is_empty() {
            1.0
        } else {
            self.latest_reliabilities.values().sum::<f64>() / self.latest_reliabilities.len() as f64
        };
        self.freq_gauge.push(total_rate);
        self.rel_gauge.push(mean_rel);

        let snapshot = MonitoringSnapshot {
            host: self.host,
            components: arch.component_inventory().into_iter().collect(),
            frequencies,
            event_sizes,
            reliabilities: self.latest_reliabilities.clone(),
            taken_at_secs: now.as_secs_f64(),
        };
        self.last_snapshot = Some(snapshot.clone());

        if self.freq_gauge.is_stable() && self.rel_gauge.is_stable() {
            let report = Event::notification(EV_REPORT)
                .with_payload(snapshot.encode().expect("snapshots serialize"));
            services.send_reliable(services.deployer_host(), DEPLOYER_ADDRESS, &report);
            self.reports_sent += 1;
        }
    }

    /// Handles a control event addressed to [`ADMIN_ADDRESS`].
    pub(crate) fn handle(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        factory: &mut ComponentFactory,
        app_connector: BrickId,
        event: &Event,
    ) {
        match event.name() {
            EV_CONFIGURE => self.on_configure(arch, services, event),
            EV_REQUEST => self.on_request(arch, services, event),
            EV_TRANSFER => self.on_transfer(arch, services, factory, app_connector, event),
            _ => {}
        }
    }

    fn on_configure(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        event: &Event,
    ) {
        let Ok(doc) = serde_json::from_slice::<ConfigureDoc>(event.payload()) else {
            return;
        };
        services.replace_directory(doc.directory);
        for (component, holder) in doc.fetches {
            if arch.contains_component(&component) {
                // Already here (no-op move); confirm immediately.
                let ack = Event::notification(EV_ACK).with_param(P_COMPONENT, component.as_str());
                services.send_reliable(services.deployer_host(), DEPLOYER_ADDRESS, &ack);
                continue;
            }
            let request = Event::request(EV_REQUEST)
                .with_param(P_COMPONENT, component.as_str())
                .with_param(P_REQUESTER, self.host.raw() as i64);
            services.send_reliable(holder, ADMIN_ADDRESS, &request);
        }
    }

    fn on_request(&mut self, arch: &mut Architecture, services: &mut HostServices, event: &Event) {
        let Some(component) = event.param_text(P_COMPONENT).map(str::to_owned) else {
            return;
        };
        let Some(requester) = event.param(P_REQUESTER).and_then(|v| v.as_i64()) else {
            return;
        };
        let requester = HostId::new(requester as u32);
        let Ok((type_name, state)) = arch.detach_component(&component) else {
            // Not here (already moved or never was); nothing to ship.
            return;
        };
        let doc = TransferDoc {
            name: component,
            type_name,
            state,
        };
        let transfer = Event::reply(EV_TRANSFER)
            .with_payload(serde_json::to_vec(&doc).expect("transfer docs serialize"));
        services.send_reliable(requester, ADMIN_ADDRESS, &transfer);
    }

    fn on_transfer(
        &mut self,
        arch: &mut Architecture,
        services: &mut HostServices,
        factory: &mut ComponentFactory,
        app_connector: BrickId,
        event: &Event,
    ) {
        let Ok(doc) = serde_json::from_slice::<TransferDoc>(event.payload()) else {
            return;
        };
        let Ok(behavior) = factory.build(&doc.type_name, &doc.state) else {
            return;
        };
        let Ok(id) = arch.add_boxed_component(doc.name.clone(), behavior) else {
            return; // duplicate arrival of the same migrant
        };
        let _ = arch.weld(id, app_connector);
        services.directory_set(doc.name.clone(), self.host);
        // Replay events buffered while the component was in flight.
        for buffered in services.take_buffered(&doc.name) {
            let _ = arch.publish(&doc.name, buffered);
        }
        let ack = Event::notification(EV_ACK).with_param(P_COMPONENT, doc.name.as_str());
        services.send_reliable(services.deployer_host(), DEPLOYER_ADDRESS, &ack);
    }
}

/// The master-host deployer (the paper's `DeployerComponent` — the
/// `ExtensibleComponent` with the `Deployer` implementation of `IAdmin`).
pub struct DeployerComponent {
    host: HostId,
    snapshots: BTreeMap<HostId, MonitoringSnapshot>,
    /// Hosts the deployer has ever heard of (reports, past move sources);
    /// all of them receive directory refreshes.
    known_hosts: BTreeSet<HostId>,
    pending: BTreeSet<String>,
    requested: u64,
    confirmed: u64,
}

impl std::fmt::Debug for DeployerComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeployerComponent")
            .field("host", &self.host)
            .field("snapshots", &self.snapshots.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl DeployerComponent {
    pub(crate) fn new(host: HostId) -> Self {
        DeployerComponent {
            host,
            snapshots: BTreeMap::new(),
            known_hosts: BTreeSet::new(),
            pending: BTreeSet::new(),
            requested: 0,
            confirmed: 0,
        }
    }

    /// Monitoring snapshots collected from every reporting host.
    pub fn snapshots(&self) -> &BTreeMap<HostId, MonitoringSnapshot> {
        &self.snapshots
    }

    /// Progress of the redeployment issued by the last `effect` call.
    pub fn status(&self) -> RedeploymentStatus {
        RedeploymentStatus {
            requested: self.requested,
            confirmed: self.confirmed,
            in_flight: self.pending.iter().cloned().collect(),
        }
    }

    /// Issues a redeployment: computes per-host configurations from the
    /// desired `target` and the current directory, and sends every admin its
    /// new configuration (including the refreshed global directory).
    pub(crate) fn effect(&mut self, services: &mut HostServices, target: DeploymentCommand) {
        let current = services.directory().clone();
        let mut fetches_by_host: BTreeMap<HostId, Vec<(String, HostId)>> = BTreeMap::new();
        let mut new_directory = current.clone();
        for (component, to) in &target {
            new_directory.insert(component.clone(), *to);
            match current.get(component) {
                Some(from) if from == to => {}
                Some(from) => {
                    fetches_by_host
                        .entry(*to)
                        .or_default()
                        .push((component.clone(), *from));
                    self.pending.insert(component.clone());
                    self.requested += 1;
                    // The source host may hold nothing else afterwards, yet
                    // it must learn the new directory to chase stale events.
                    self.known_hosts.insert(*from);
                }
                None => {}
            }
        }
        // Every known host gets the new directory — component holders, but
        // also bystanders (known from their monitoring reports), whose
        // stale directories would otherwise misroute application events.
        let mut all_hosts: BTreeSet<HostId> = new_directory.values().copied().collect();
        all_hosts.extend(self.known_hosts.iter().copied());
        all_hosts.insert(self.host);
        for host in all_hosts {
            let doc = ConfigureDoc {
                directory: new_directory.clone(),
                fetches: fetches_by_host.remove(&host).unwrap_or_default(),
            };
            let configure = Event::request(EV_CONFIGURE)
                .with_payload(serde_json::to_vec(&doc).expect("configure docs serialize"));
            services.send_reliable(host, ADMIN_ADDRESS, &configure);
        }
    }

    /// Handles a control event addressed to [`DEPLOYER_ADDRESS`].
    pub(crate) fn handle(&mut self, services: &mut HostServices, event: &Event) {
        match event.name() {
            EV_REPORT => {
                if let Ok(snapshot) = MonitoringSnapshot::decode(event.payload()) {
                    self.known_hosts.insert(snapshot.host);
                    self.snapshots.insert(snapshot.host, snapshot);
                }
            }
            EV_ACK => {
                if let Some(component) = event.param_text(P_COMPONENT) {
                    if self.pending.remove(component) {
                        self.confirmed += 1;
                    }
                }
            }
            EV_MEDIATE => {
                let (Some(host), Some(component)) = (
                    event.param(P_FINAL_HOST).and_then(|v| v.as_i64()),
                    event.param_text(P_FINAL_COMPONENT).map(str::to_owned),
                ) else {
                    return;
                };
                if let Ok(inner) = Event::decode(event.payload()) {
                    services.send_reliable(HostId::new(host as u32), &component, &inner);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_doc_roundtrip() {
        let mut doc = ConfigureDoc::default();
        doc.directory.insert("gui".into(), HostId::new(1));
        doc.fetches.push(("tracker".into(), HostId::new(2)));
        let bytes = serde_json::to_vec(&doc).unwrap();
        let back: ConfigureDoc = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn transfer_doc_roundtrip() {
        let doc = TransferDoc {
            name: "tracker".into(),
            type_name: "workload".into(),
            state: vec![1, 2, 3],
        };
        let bytes = serde_json::to_vec(&doc).unwrap();
        let back: TransferDoc = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn status_reports_completion() {
        let mut d = DeployerComponent::new(HostId::new(0));
        assert!(d.status().is_complete());
        d.pending.insert("x".into());
        d.requested = 1;
        assert!(!d.status().is_complete());
        d.handle(
            &mut dummy_services(),
            &Event::notification(EV_ACK).with_param(P_COMPONENT, "x"),
        );
        let s = d.status();
        assert!(s.is_complete());
        assert_eq!(s.confirmed, 1);
    }

    #[test]
    fn report_events_populate_snapshots() {
        let mut d = DeployerComponent::new(HostId::new(0));
        let snap = MonitoringSnapshot {
            host: HostId::new(3),
            ..MonitoringSnapshot::default()
        };
        let report = Event::notification(EV_REPORT).with_payload(snap.encode().unwrap());
        d.handle(&mut dummy_services(), &report);
        assert_eq!(d.snapshots().len(), 1);
        assert!(d.snapshots().contains_key(&HostId::new(3)));
    }

    fn dummy_services() -> HostServices {
        // Accessing the private constructor through the crate namespace.
        crate::host::test_support::services(HostId::new(0))
    }
}
