//! ε-stability detection — the platform-independent half of the Monitor.
//!
//! Per the paper: "monitoring is performed in short intervals of adjustable
//! duration. Once the monitored data is stable (i.e., the difference in the
//! data across a desired number of consecutive intervals is less than an
//! adjustable value ε), the AdminComponent sends the description of its local
//! deployment architecture and the monitored data … to the
//! DeployerComponent."

use std::collections::VecDeque;
use std::fmt;

/// Detects when a stream of windowed readings has settled.
///
/// Feed one reading per monitoring interval; the gauge reports stability once
/// the last `required` consecutive *differences* are all below `epsilon`.
///
/// # Example
///
/// ```
/// use redep_prism::StabilityGauge;
/// let mut g = StabilityGauge::new(0.05, 3);
/// for v in [0.9, 0.5, 0.52, 0.53, 0.51] {
///     g.push(v);
/// }
/// assert!(g.is_stable());
/// g.push(0.9); // a jump resets stability
/// assert!(!g.is_stable());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct StabilityGauge {
    epsilon: f64,
    required: usize,
    relative: bool,
    history: VecDeque<f64>,
}

impl StabilityGauge {
    /// Creates a gauge requiring `required` consecutive inter-interval
    /// differences below `epsilon` (absolute).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or `required` is zero.
    pub fn new(epsilon: f64, required: usize) -> Self {
        assert!(
            epsilon >= 0.0,
            "epsilon must be non-negative, got {epsilon}"
        );
        assert!(required > 0, "at least one stable interval is required");
        StabilityGauge {
            epsilon,
            required,
            relative: false,
            history: VecDeque::new(),
        }
    }

    /// Creates a gauge judging *relative* differences: consecutive readings
    /// `a, b` are stable when `|a − b| < epsilon · max(|a|, |b|, 1)`.
    /// Use this for quantities without a natural scale (e.g. total event
    /// rates), where an absolute ε would never tolerate sampling noise.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or `required` is zero.
    pub fn new_relative(epsilon: f64, required: usize) -> Self {
        let mut g = StabilityGauge::new(epsilon, required);
        g.relative = true;
        g
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured number of consecutive stable differences.
    pub fn required(&self) -> usize {
        self.required
    }

    /// Records the reading of one monitoring interval.
    pub fn push(&mut self, value: f64) {
        self.history.push_back(value);
        // Keep only what stability judgment needs: required diffs need
        // required + 1 values.
        while self.history.len() > self.required + 1 {
            self.history.pop_front();
        }
    }

    /// Number of readings seen (capped at the retention window).
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` if no readings have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The most recent reading.
    pub fn latest(&self) -> Option<f64> {
        self.history.back().copied()
    }

    /// Whether the readings have settled: the last `required` consecutive
    /// differences are all `< epsilon`. Requires `required + 1` readings.
    pub fn is_stable(&self) -> bool {
        if self.history.len() < self.required + 1 {
            return false;
        }
        self.history
            .iter()
            .zip(self.history.iter().skip(1))
            .all(|(a, b)| {
                let scale = if self.relative {
                    a.abs().max(b.abs()).max(1.0)
                } else {
                    1.0
                };
                (a - b).abs() < self.epsilon * scale
            })
    }

    /// Discards all readings (e.g. after shipping a stable snapshot).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

impl fmt::Display for StabilityGauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stability(ε={}, k={}, {})",
            self.epsilon,
            self.required,
            if self.is_stable() {
                "stable"
            } else {
                "settling"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_stable_before_enough_readings() {
        let mut g = StabilityGauge::new(0.1, 2);
        g.push(1.0);
        assert!(!g.is_stable());
        g.push(1.0);
        assert!(!g.is_stable()); // only 1 difference so far, need 2
        g.push(1.0);
        assert!(g.is_stable());
    }

    #[test]
    fn large_jump_defeats_stability() {
        let mut g = StabilityGauge::new(0.1, 2);
        for v in [1.0, 1.05, 0.5] {
            g.push(v);
        }
        assert!(!g.is_stable());
    }

    #[test]
    fn stability_recovers_after_settling_again() {
        let mut g = StabilityGauge::new(0.1, 2);
        for v in [1.0, 0.2, 0.22, 0.21] {
            g.push(v);
        }
        assert!(g.is_stable());
    }

    #[test]
    fn reset_clears_history() {
        let mut g = StabilityGauge::new(0.1, 1);
        g.push(1.0);
        g.push(1.0);
        assert!(g.is_stable());
        g.reset();
        assert!(g.is_empty());
        assert!(!g.is_stable());
    }

    #[test]
    fn tighter_epsilon_is_harder_to_satisfy() {
        let readings = [0.50, 0.52, 0.54, 0.52];
        let mut loose = StabilityGauge::new(0.05, 3);
        let mut tight = StabilityGauge::new(0.01, 3);
        for v in readings {
            loose.push(v);
            tight.push(v);
        }
        assert!(loose.is_stable());
        assert!(!tight.is_stable());
    }

    #[test]
    fn latest_tracks_last_push() {
        let mut g = StabilityGauge::new(0.1, 1);
        assert_eq!(g.latest(), None);
        g.push(3.5);
        assert_eq!(g.latest(), Some(3.5));
    }

    #[test]
    #[should_panic(expected = "at least one stable interval")]
    fn zero_required_panics() {
        let _ = StabilityGauge::new(0.1, 0);
    }
}
