//! The per-host middleware runtime.
//!
//! A [`PrismHost`] is the "address space" of the paper: it owns one
//! [`Architecture`], the distribution transport to other hosts, the
//! host-level monitors, and the meta-level [`AdminComponent`] (plus, on the
//! master host, the [`DeployerComponent`]). It implements
//! [`redep_netsim::Node`], so whole distributed Prism systems run inside the
//! network simulator.

use crate::admin::{AdminComponent, DeployerComponent};
use crate::architecture::{Architecture, HostAction};
use crate::brick::{BrickId, ComponentBehavior, ComponentFactory};
use crate::durable::{Checkpoint, DurableStore, JournalRecord, OpKind, OpVerdict, RecoveryReport};
use crate::event::Event;
use crate::monitor::{EventFrequencyMonitor, ReliabilityProbe};
use crate::symbol::Symbol;
use crate::transport::{ReliableChannel, WireMsg};
use crate::PrismError;
use redep_model::HostId;
use redep_netsim::{Duration, Message, Node, NodeCtx, SimTime};

use redep_telemetry::{Counter, Histogram, Telemetry, TraceCtx};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Reserved component address of the admin on every host.
pub const ADMIN_ADDRESS: &str = "prism.admin";
/// Reserved component address of the deployer on the master host.
pub const DEPLOYER_ADDRESS: &str = "prism.deployer";

/// Event parameter marking an application event that was already forwarded
/// once to chase a migrated component (prevents forwarding loops between
/// hosts with mutually stale directories).
const FORWARDED_MARKER: &str = "prism.forwarded";

const TOKEN_RTO: u64 = 0;
const TOKEN_PING: u64 = 1;
const TOKEN_MONITOR: u64 = 2;
const TOKEN_DEPLOY: u64 = 3;
const TOKEN_COMPONENT_BASE: u64 = 1000;

/// Static configuration of a host runtime.
#[derive(Clone, PartialEq, Debug)]
pub struct HostConfig {
    /// The master host running the deployer.
    pub deployer_host: HostId,
    /// Hosts this host can talk to directly (its physical neighbors).
    pub neighbors: BTreeSet<HostId>,
    /// Next-hop routing table for non-neighbor destinations
    /// (destination → neighbor to relay through). Destinations absent from
    /// both `neighbors` and `routes` are unreachable.
    pub routes: BTreeMap<HostId, HostId>,
    /// Retransmission interval of the reliable channels.
    pub rto: Duration,
    /// Interval between reliability pings to each neighbor.
    pub ping_interval: Duration,
    /// Length of one monitoring window.
    pub monitor_window: Duration,
    /// ε for the stability gauges.
    pub epsilon: f64,
    /// Consecutive stable differences required before reporting.
    pub stable_windows: usize,
    /// Whether events addressed to absent components are parked and
    /// replayed after the component arrives (the paper's behavior).
    /// Disable only for the buffering ablation — events are then dropped.
    pub buffer_during_migration: bool,
    /// How long the deployer waits for a move's EV_ACK before reissuing
    /// the move (with a freshly resolved holder).
    pub move_deadline: Duration,
    /// Send attempts per move before the deployer gives up and records the
    /// move as failed.
    pub max_move_attempts: u32,
    /// Interval of the deployer's deadline sweep.
    pub deploy_tick: Duration,
    /// Monitoring windows between durable checkpoints. Each checkpoint
    /// snapshots the host's full durable state and truncates the write-ahead
    /// journal, bounding both replay time after a crash and journal growth.
    pub checkpoint_interval_windows: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            deployer_host: HostId::new(0),
            neighbors: BTreeSet::new(),
            routes: BTreeMap::new(),
            rto: Duration::from_millis(200),
            ping_interval: Duration::from_millis(250),
            monitor_window: Duration::from_secs_f64(5.0),
            epsilon: 0.1,
            stable_windows: 2,
            buffer_during_migration: true,
            move_deadline: Duration::from_secs_f64(8.0),
            max_move_attempts: 5,
            deploy_tick: Duration::from_secs_f64(1.0),
            checkpoint_interval_windows: 4,
        }
    }
}

/// Counters describing one host runtime's activity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HostStats {
    /// Application events emitted by local components via named sends
    /// (whether they ended up local or remote).
    pub app_events_emitted: u64,
    /// Application events put on the wire (raw frames).
    pub app_events_sent: u64,
    /// Application events delivered into the local architecture.
    pub app_events_received: u64,
    /// Control frames put on the wire (first transmissions).
    pub control_sent: u64,
    /// Control frames retransmitted.
    pub retransmissions: u64,
    /// Events buffered because their target component is not (yet) here.
    pub events_buffered: u64,
    /// Buffered events replayed after a component arrived.
    pub events_replayed: u64,
    /// Events dropped because the directory knows no location for the target.
    pub events_undeliverable: u64,
    /// Frames relayed on behalf of other hosts.
    pub frames_forwarded: u64,
    /// Frames dropped because no route to the destination exists.
    pub frames_unroutable: u64,
}

/// The host-level services the admin and deployer act through: the
/// distribution transport, the deployment directory, and the buffer that
/// parks events for components that are mid-migration.
pub struct HostServices {
    host: HostId,
    now: SimTime,
    deployer_host: HostId,
    neighbors: BTreeSet<HostId>,
    routes: BTreeMap<HostId, HostId>,
    directory: BTreeMap<String, HostId>,
    /// Derived O(1) lookup index over `directory` — the per-event `locate`
    /// path must not pay a string-keyed tree walk. Rebuilt on every
    /// directory mutation; never iterated, so its order cannot leak.
    dir_index: HashMap<String, HostId>,
    channels: BTreeMap<HostId, ReliableChannel>,
    rto: Duration,
    /// The platform-dependent reliability monitor (ping counters).
    pub(crate) probe: ReliabilityProbe,
    outbox: Vec<(HostId, WireMsg)>,
    buffered: BTreeMap<String, Vec<Event>>,
    next_nonce: u64,
    buffer_during_migration: bool,
    stats: HostStats,
    /// The write-ahead journal + checkpoint store backing crash recovery.
    durable: DurableStore,
    /// Set while `on_restart` replays the store: journaling hooks no-op, so
    /// replaying a record never re-journals it.
    replaying: bool,
}

impl fmt::Debug for HostServices {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostServices")
            .field("host", &self.host)
            .field("directory", &self.directory)
            .field("outbox", &self.outbox.len())
            .finish()
    }
}

impl HostServices {
    fn new(host: HostId, config: &HostConfig) -> Self {
        HostServices {
            host,
            now: SimTime::ZERO,
            deployer_host: config.deployer_host,
            neighbors: config.neighbors.clone(),
            routes: config.routes.clone(),
            directory: BTreeMap::new(),
            dir_index: HashMap::new(),
            channels: BTreeMap::new(),
            rto: config.rto,
            probe: ReliabilityProbe::new(),
            outbox: Vec::new(),
            buffered: BTreeMap::new(),
            next_nonce: 0,
            buffer_during_migration: config.buffer_during_migration,
            stats: HostStats::default(),
            durable: DurableStore::in_memory(),
            replaying: false,
        }
    }

    /// Appends one record to the write-ahead journal — unless a crash
    /// recovery is currently replaying that very journal.
    pub(crate) fn journal(&mut self, record: JournalRecord) {
        if self.replaying {
            return;
        }
        self.durable.append(&record);
    }

    /// The durable store (journal + checkpoints) backing this host.
    pub fn durable(&self) -> &DurableStore {
        &self.durable
    }

    /// This host's id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The master host running the deployer.
    pub fn deployer_host(&self) -> HostId {
        self.deployer_host
    }

    /// Hosts directly reachable from here.
    pub fn neighbors(&self) -> &BTreeSet<HostId> {
        &self.neighbors
    }

    /// Whether `peer` is directly reachable.
    pub fn can_reach(&self, peer: HostId) -> bool {
        self.neighbors.contains(&peer)
    }

    /// Activity counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Unacknowledged reliable frames per peer (diagnostics).
    pub fn pending_control(&self) -> Vec<(HostId, usize)> {
        self.channels
            .iter()
            .filter(|(_, ch)| ch.in_flight() > 0)
            .map(|(peer, ch)| (*peer, ch.in_flight()))
            .collect()
    }

    /// The deployment directory: component instance name → current host.
    pub fn directory(&self) -> &BTreeMap<String, HostId> {
        &self.directory
    }

    /// Replaces the whole directory (sent with every redeployment command).
    pub fn replace_directory(&mut self, directory: BTreeMap<String, HostId>) {
        self.dir_index.clear();
        self.dir_index
            .extend(directory.iter().map(|(c, h)| (c.clone(), *h)));
        self.journal(JournalRecord::DirectoryReplaced {
            directory: directory
                .iter()
                .map(|(c, h)| (c.clone(), h.raw()))
                .collect(),
        });
        self.directory = directory;
    }

    /// Records one component's location.
    pub fn directory_set(&mut self, component: impl Into<String>, host: HostId) {
        let component = component.into();
        self.journal(JournalRecord::DirectorySet {
            component: component.clone(),
            host: host.raw(),
        });
        self.dir_index.insert(component.clone(), host);
        self.directory.insert(component, host);
    }

    /// Looks up where a component currently lives.
    pub fn locate(&self, component: &str) -> Option<HostId> {
        self.dir_index.get(component).copied()
    }

    /// Sends a control event reliably to a component on `dst`. Unreachable
    /// destinations are mediated through the deployer host, reproducing the
    /// paper's "the relevant request events are sent to the
    /// DeployerComponent, which then mediates their interaction".
    pub fn send_reliable(&mut self, dst: HostId, to_component: impl Into<Symbol>, event: &Event) {
        let to_component = to_component.into();
        if dst == self.host {
            // Local control messages short-circuit at the host layer; the
            // runtime routes them on the next processing pass.
            self.outbox.push((
                dst,
                WireMsg::Raw {
                    to_component,
                    event: event.encode().expect("events serialize"),
                },
            ));
            return;
        }
        if self.next_hop(dst).is_some() || dst == self.deployer_host {
            let (now, rto) = (self.now, self.rto);
            let frame = self.channels.entry(dst).or_default().send(
                to_component,
                event.encode().expect("events serialize"),
                now,
                rto,
            );
            // A consumed sequence number must survive the crash: a recovered
            // sender that reused it would be silently deduplicated by the
            // peer's watermark, stalling the protocol forever.
            self.journal(JournalRecord::ChannelSend { peer: dst.raw() });
            self.stats.control_sent += 1;
            self.wire(dst, frame);
        } else if self.host == self.deployer_host {
            // We *are* the mediator of last resort and still have no route:
            // wrapping the frame to ourselves would loop forever. Drop it.
            self.stats.frames_unroutable += 1;
        } else {
            // Mediate via the deployer.
            let wrapped = Event::request(crate::admin::EV_MEDIATE)
                .with_param(crate::admin::P_FINAL_HOST, dst.raw() as i64)
                .with_param(crate::admin::P_FINAL_COMPONENT, to_component.as_str())
                .with_payload(event.encode().expect("events serialize"));
            let (now, rto) = (self.now, self.rto);
            let frame = self.channels.entry(self.deployer_host).or_default().send(
                Symbol::intern(DEPLOYER_ADDRESS),
                wrapped.encode().expect("events serialize"),
                now,
                rto,
            );
            let deployer = self.deployer_host;
            self.journal(JournalRecord::ChannelSend {
                peer: deployer.raw(),
            });
            self.stats.control_sent += 1;
            self.wire(deployer, frame);
        }
    }

    /// Sends an application event unreliably (raw frame) to a component on
    /// `dst`. Subject to link loss — by design.
    pub fn send_raw(&mut self, dst: HostId, to_component: impl Into<Symbol>, event: &Event) {
        self.stats.app_events_sent += 1;
        self.wire(
            dst,
            WireMsg::Raw {
                to_component: to_component.into(),
                event: event.encode().expect("events serialize"),
            },
        );
    }

    /// Parks an event for a component that is not currently attached here
    /// (dropped instead when buffering is ablated away, counting as
    /// undeliverable).
    pub fn buffer_event(&mut self, component: &str, event: Event) {
        if !self.buffer_during_migration {
            self.stats.events_undeliverable += 1;
            return;
        }
        self.stats.events_buffered += 1;
        self.journal(JournalRecord::EventBuffered {
            component: component.to_owned(),
            event: event.encode().expect("events serialize"),
        });
        self.buffered
            .entry(component.to_owned())
            .or_default()
            .push(event);
    }

    /// Takes all buffered events for `component` (e.g. after it arrived).
    pub fn take_buffered(&mut self, component: &str) -> Vec<Event> {
        let events = self.buffered.remove(component).unwrap_or_default();
        if !events.is_empty() {
            self.journal(JournalRecord::BufferDrained {
                component: component.to_owned(),
            });
        }
        self.stats.events_replayed += events.len() as u64;
        events
    }

    /// Component names with parked events.
    pub fn buffered_components(&self) -> Vec<String> {
        self.buffered.keys().cloned().collect()
    }

    /// Total number of events currently parked across all components.
    pub fn buffered_total(&self) -> usize {
        self.buffered.values().map(Vec::len).sum()
    }

    /// The neighbor to relay through for `dst` (the destination itself
    /// when directly connected).
    pub fn next_hop(&self, dst: HostId) -> Option<HostId> {
        if self.neighbors.contains(&dst) {
            Some(dst)
        } else {
            self.routes.get(&dst).copied()
        }
    }

    /// Puts a frame on the wire toward `dst`, relaying through the routing
    /// table when `dst` is not a neighbor. Unroutable frames are dropped
    /// (and counted).
    fn wire(&mut self, dst: HostId, frame: WireMsg) {
        if dst == self.host || self.neighbors.contains(&dst) {
            self.outbox.push((dst, frame));
            return;
        }
        match self.next_hop(dst) {
            Some(hop) => {
                let wrapped = WireMsg::Forward {
                    src: self.host,
                    dst,
                    frame: frame.encode(),
                };
                self.outbox.push((hop, wrapped));
            }
            None => {
                self.stats.frames_unroutable += 1;
            }
        }
    }

    fn ping(&mut self, peer: HostId) {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.probe.record_ping(peer);
        self.outbox.push((peer, WireMsg::Ping { nonce }));
    }
}

/// One host of a distributed Prism-MW system, runnable inside
/// [`redep_netsim::Simulator`].
///
/// See the crate docs for the big picture and `crates/prism/tests` /
/// the repository examples for full systems.
pub struct PrismHost {
    arch: Architecture,
    factory: ComponentFactory,
    services: HostServices,
    admin: AdminComponent,
    deployer: Option<DeployerComponent>,
    config: HostConfig,
    app_connector: BrickId,
    next_timer: u64,
    timers: BTreeMap<u64, (Symbol, u64)>,
    /// Monitoring windows closed since the last checkpoint.
    windows_since_checkpoint: u32,
    /// Every crash recovery this host performed, in order (cumulative; see
    /// [`PrismHost::take_fresh_recovery_reports`] for the consuming cursor).
    recovery_reports: Vec<RecoveryReport>,
    /// Index of the first report not yet handed out by
    /// [`PrismHost::take_fresh_recovery_reports`].
    fresh_reports: usize,
    telemetry: Telemetry,
    routing_latency: Histogram,
    /// Deliveries pumped through the local architecture
    /// (`pipeline.events.routed`).
    events_routed: Counter,
    /// Bytes produced by the wire codec for outbound frames
    /// (`pipeline.codec.bytes`).
    codec_bytes: Counter,
}

/// Upper-inclusive bounds (sim microseconds) for the event-routing latency
/// histogram: spanning sub-millisecond local hops to multi-second detours
/// through retransmission and mediation.
const ROUTING_LATENCY_BOUNDS_US: &[f64] = &[
    100.0,
    1_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
    5_000_000.0,
];

/// Maps deployment-protocol event names onto migration phase labels.
fn migration_phase(event_name: &str) -> Option<&'static str> {
    match event_name {
        crate::admin::EV_CONFIGURE => Some("configure"),
        crate::admin::EV_REQUEST => Some("request"),
        crate::admin::EV_TRANSFER => Some("transfer"),
        crate::admin::EV_ACK => Some("ack"),
        crate::admin::EV_NACK => Some("nack"),
        _ => None,
    }
}

impl fmt::Debug for PrismHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrismHost")
            .field("host", &self.arch.host())
            .field("components", &self.arch.component_count())
            .field("deployer", &self.deployer.is_some())
            .finish()
    }
}

impl PrismHost {
    /// Creates a host runtime.
    ///
    /// The architecture starts with one application connector (the host-local
    /// "bus") carrying an [`EventFrequencyMonitor`], to which
    /// [`PrismHost::add_app_component`] welds every application component —
    /// the configuration of the paper's Figure 8.
    pub fn new(host: HostId, factory: ComponentFactory, config: HostConfig) -> Self {
        let mut arch = Architecture::new(format!("arch-{host}"), host);
        let app_connector = arch.add_connector("bus");
        arch.attach_monitor(
            app_connector,
            EventFrequencyMonitor::new(config.monitor_window),
        )
        .expect("connector just created");
        let admin = AdminComponent::new(host, &config);
        let services = HostServices::new(host, &config);
        let telemetry = Telemetry::disabled();
        let routing_latency = telemetry
            .metrics()
            .histogram("prism.routing.latency_us", ROUTING_LATENCY_BOUNDS_US);
        let events_routed = telemetry.metrics().counter("pipeline.events.routed");
        let codec_bytes = telemetry.metrics().counter("pipeline.codec.bytes");
        PrismHost {
            arch,
            factory,
            services,
            admin,
            deployer: None,
            config,
            app_connector,
            next_timer: 0,
            timers: BTreeMap::new(),
            windows_since_checkpoint: 0,
            recovery_reports: Vec::new(),
            fresh_reports: 0,
            telemetry,
            routing_latency,
            events_routed,
            codec_bytes,
        }
    }

    /// Installs a telemetry handle (typically the same handle as the
    /// simulator's, so middleware and network records interleave in one
    /// journal). Install before the run starts.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.routing_latency = telemetry
            .metrics()
            .histogram("prism.routing.latency_us", ROUTING_LATENCY_BOUNDS_US);
        self.events_routed = telemetry.metrics().counter("pipeline.events.routed");
        self.codec_bytes = telemetry.metrics().counter("pipeline.codec.bytes");
        self.services.durable.set_counters(
            telemetry.metrics().counter("prism.durable.journal.records"),
            telemetry.metrics().counter("prism.durable.journal.bytes"),
            telemetry
                .metrics()
                .counter("prism.durable.checkpoint.count"),
        );
        if let Some(deployer) = self.deployer.as_mut() {
            deployer.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// The telemetry handle (a disabled no-op sink unless one was installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Folds this host's [`HostStats`] into the telemetry registry's gauges
    /// under a `prism.h<id>.*` prefix.
    pub fn publish_gauges(&self) {
        let host = self.arch.host();
        let stats = self.services.stats();
        let metrics = self.telemetry.metrics();
        for (name, value) in [
            ("app_events_emitted", stats.app_events_emitted),
            ("app_events_sent", stats.app_events_sent),
            ("app_events_received", stats.app_events_received),
            ("control_sent", stats.control_sent),
            ("retransmissions", stats.retransmissions),
            ("events_buffered", stats.events_buffered),
            ("events_replayed", stats.events_replayed),
            ("events_undeliverable", stats.events_undeliverable),
        ] {
            metrics
                .gauge(&format!("prism.{host}.{name}"))
                .set(value as f64);
        }
    }

    /// Enables the deployer role (call on the master host only).
    pub fn enable_deployer(&mut self) {
        let mut deployer = DeployerComponent::new(self.arch.host(), &self.config);
        deployer.set_telemetry(self.telemetry.clone());
        self.deployer = Some(deployer);
    }

    /// Whether this host runs the deployer.
    pub fn is_deployer(&self) -> bool {
        self.deployer.is_some()
    }

    /// The host's architecture.
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// The host's architecture, mutable.
    pub fn architecture_mut(&mut self) -> &mut Architecture {
        &mut self.arch
    }

    /// The host's services (directory, transport, buffers).
    pub fn services(&self) -> &HostServices {
        &self.services
    }

    /// The admin (monitoring + effecting endpoint) of this host.
    pub fn admin(&self) -> &AdminComponent {
        &self.admin
    }

    /// The deployer, when enabled.
    pub fn deployer(&self) -> Option<&DeployerComponent> {
        self.deployer.as_ref()
    }

    /// The deployer, mutable, when enabled.
    pub fn deployer_mut(&mut self) -> Option<&mut DeployerComponent> {
        self.deployer.as_mut()
    }

    /// The id of the host-local application connector ("bus").
    pub fn app_connector(&self) -> BrickId {
        self.app_connector
    }

    /// Adds an application component and welds it to the bus.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::DuplicateComponent`] if the name is taken.
    pub fn add_app_component(
        &mut self,
        name: impl Into<String>,
        behavior: impl ComponentBehavior,
    ) -> Result<BrickId, PrismError> {
        let name = name.into();
        let id = self.arch.add_component(name.clone(), behavior)?;
        self.arch.weld(id, self.app_connector)?;
        self.services.directory_set(name, self.arch.host());
        Ok(id)
    }

    /// Seeds the deployment directory (every host should start with the
    /// same global map).
    pub fn set_initial_directory(&mut self, directory: BTreeMap<String, HostId>) {
        self.services.replace_directory(directory);
    }

    /// Issues a redeployment from this (deployer) host: move the named
    /// components to the given hosts. Commands go out with the next
    /// processing pass.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownComponent`] when this host does not run
    /// the deployer.
    pub fn effect_redeployment(
        &mut self,
        target: BTreeMap<String, HostId>,
    ) -> Result<(), PrismError> {
        self.effect_redeployment_traced(target, None)
    }

    /// [`PrismHost::effect_redeployment`] with the migration protocol traced:
    /// every move span (and the whole configure/request/transfer/ack cascade)
    /// becomes a child of `parent` — typically a framework's redeployment
    /// span, so journals link each move to the cycle that decided it.
    pub fn effect_redeployment_traced(
        &mut self,
        target: BTreeMap<String, HostId>,
        parent: Option<TraceCtx>,
    ) -> Result<(), PrismError> {
        let deployer = self
            .deployer
            .as_mut()
            .ok_or_else(|| PrismError::UnknownComponent(DEPLOYER_ADDRESS.to_owned()))?;
        let moves = target.len();
        deployer.effect(&mut self.services, target, parent);
        self.telemetry
            .event("prism.migration.effect", self.services.now.as_micros())
            .field("host", self.arch.host().raw())
            .field("moves", moves)
            .field("in_flight", deployer.status().in_flight.len())
            .trace_opt(parent)
            .emit();
        let blob = deployer.durable_blob();
        self.services.journal(JournalRecord::DeployerState { blob });
        Ok(())
    }

    /// Settles any still-open move spans of the current epoch as
    /// `abandoned` — called by frameworks when they reconcile an incomplete
    /// redeployment, so no journal ends with dangling move spans. A no-op on
    /// non-deployer hosts.
    pub fn abandon_pending_moves(&mut self) {
        let now = self.services.now;
        if let Some(deployer) = self.deployer.as_mut() {
            deployer.abandon_pending(now);
        }
    }

    /// Asks the admin on `holder` to ship `component` here — the pairwise
    /// effecting path used by *decentralized* configurations, where there is
    /// no master deployer and "Local Effectors … collaborate in performing
    /// the redeployment". The request goes out with the next processing
    /// pass; completion is observable via
    /// [`Architecture::contains_component`].
    pub fn request_component(&mut self, component: &str, holder: HostId) {
        self.request_component_traced(component, holder, None);
    }

    /// [`PrismHost::request_component`] carrying a trace context, so the
    /// resulting request/transfer hops journal as children of the caller's
    /// span (decentralized frameworks pass their per-move span here).
    pub fn request_component_traced(
        &mut self,
        component: &str,
        holder: HostId,
        ctx: Option<TraceCtx>,
    ) {
        let mut request = Event::request(crate::admin::EV_REQUEST)
            .with_param(crate::admin::P_COMPONENT, component)
            .with_param(crate::admin::P_REQUESTER, self.arch.host().raw() as i64);
        if let Some(ctx) = ctx {
            request = request.with_trace(ctx);
        }
        self.services.send_reliable(holder, ADMIN_ADDRESS, &request);
    }

    /// Records a component's new location in this host's directory (the
    /// decentralized counterpart of the deployer's directory broadcast).
    pub fn update_directory(&mut self, component: impl Into<String>, host: HostId) {
        self.services.directory_set(component, host);
    }

    /// Replaces the whole directory with ground truth and forwards any
    /// buffered events whose target turns out to live elsewhere — the
    /// recovery path frameworks use after reconciling an incomplete
    /// redeployment, so no host keeps routing on a stale map forever.
    pub fn resync_directory(&mut self, directory: BTreeMap<String, HostId>) {
        self.services.replace_directory(directory);
        for component in self.services.buffered_components() {
            match self.services.locate(&component) {
                Some(there) if there != self.arch.host() => {
                    for event in self.services.take_buffered(&component) {
                        let event = event.with_param(FORWARDED_MARKER, true);
                        self.services.send_raw(there, &component, &event);
                    }
                }
                // Still mapped here (or unknown): leave the events parked
                // for the component's arrival.
                _ => {}
            }
        }
    }

    // ---- durability ---------------------------------------------------------

    /// Every crash recovery this host performed, in order.
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery_reports
    }

    /// Recovery reports produced since the last call (frameworks drain these
    /// once per decision cycle; [`PrismHost::recovery_reports`] keeps the
    /// cumulative list for end-of-run accounting).
    pub fn take_fresh_recovery_reports(&mut self) -> Vec<RecoveryReport> {
        let fresh = self.recovery_reports[self.fresh_reports..].to_vec();
        self.fresh_reports = self.recovery_reports.len();
        fresh
    }

    /// The durable store's current contents (checkpoint + journal bytes) —
    /// the byte-identity witness double-run determinism checks compare.
    pub fn durable_digest(&self) -> Vec<u8> {
        self.services.durable.digest()
    }

    /// Snapshots the host's full durable state into a checkpoint, truncating
    /// the write-ahead journal.
    fn checkpoint_now(&mut self, now: SimTime) {
        let checkpoint = Checkpoint {
            seq: self.services.durable.checkpoints_written(),
            at_us: now.as_micros(),
            components: self.arch.component_snapshots(),
            directory: self
                .services
                .directory
                .iter()
                .map(|(c, h)| (c.clone(), h.raw()))
                .collect(),
            buffered: self
                .services
                .buffered
                .iter()
                .map(|(c, events)| {
                    (
                        c.clone(),
                        events
                            .iter()
                            .map(|e| e.encode().expect("events serialize"))
                            .collect(),
                    )
                })
                .collect(),
            channels: self
                .services
                .channels
                .iter()
                .map(|(peer, ch)| {
                    let (next_seq, next_expected) = ch.durable_state();
                    (peer.raw(), next_seq, next_expected)
                })
                .collect(),
            timers: self
                .timers
                .iter()
                .map(|(id, (component, token))| (*id, component.as_str().to_owned(), *token))
                .collect(),
            next_timer: self.next_timer,
            admin: self.admin.durable_blob(),
            deployer: self.deployer.as_ref().map(|d| d.durable_blob()),
        };
        self.services.durable.checkpoint(&checkpoint);
        self.windows_since_checkpoint = 0;
    }

    /// Pumps the architecture to a fixpoint while *discarding* every host
    /// action — the replay half of crash recovery. The original run already
    /// carried those effects out: remote sends hit the wire before the
    /// crash, each local delivery hop has its own journal record, and timers
    /// are restored from the checkpoint plus `TimerArmed` records.
    fn replay_pump(&mut self, now: SimTime) {
        loop {
            self.arch.pump(now);
            if self.arch.take_host_actions().is_empty() {
                break;
            }
        }
    }

    /// Routes an event to a component address on this host: meta-level
    /// addresses go to admin/deployer, everything else into the
    /// architecture (or the migration buffer).
    fn deliver_local(&mut self, to_component: &str, event: Event, reliable_origin: bool) {
        match to_component {
            ADMIN_ADDRESS => {
                let phase = migration_phase(event.name());
                let replayed_before = self.services.stats.events_replayed;
                self.admin.handle(
                    &mut self.arch,
                    &mut self.services,
                    &mut self.factory,
                    self.app_connector,
                    &event,
                );
                if let Some(phase) = phase {
                    let mut builder = self
                        .telemetry
                        .event("prism.migration.phase", self.services.now.as_micros())
                        .field("host", self.arch.host().raw())
                        .field("phase", phase)
                        .field("buffered", self.services.buffered_total())
                        .field(
                            "replayed",
                            self.services.stats.events_replayed - replayed_before,
                        )
                        .trace_opt(event.trace());
                    if let Some(component) = event.param_text(crate::admin::P_COMPONENT) {
                        builder = builder.field("component", component.to_owned());
                    }
                    builder.emit();
                }
            }
            DEPLOYER_ADDRESS => {
                if let Some(deployer) = self.deployer.as_mut() {
                    deployer.handle(&mut self.services, &event);
                    if let Some(phase) = migration_phase(event.name()) {
                        let status = deployer.status();
                        let mut builder = self
                            .telemetry
                            .event("prism.migration.phase", self.services.now.as_micros())
                            .field("host", self.arch.host().raw())
                            .field("phase", phase)
                            .field("in_flight", status.in_flight.len())
                            .field("confirmed", status.confirmed)
                            .trace_opt(event.trace());
                        if let Some(component) = event.param_text(crate::admin::P_COMPONENT) {
                            builder = builder.field("component", component.to_owned());
                        }
                        builder.emit();
                    }
                }
                if let Some(deployer) = self.deployer.as_ref() {
                    let blob = deployer.durable_blob();
                    self.services.journal(JournalRecord::DeployerState { blob });
                }
            }
            name => {
                let _ = reliable_origin;
                if self.arch.contains_component(name) {
                    self.services.stats.app_events_received += 1;
                    self.services.journal(JournalRecord::Delivery {
                        component: name.to_owned(),
                        event: event.encode().expect("events serialize"),
                    });
                    self.arch
                        .publish(name, event)
                        .expect("component exists; publish cannot fail");
                } else {
                    // The target is not here (mid-migration or a stale
                    // directory at the sender). If the directory points
                    // elsewhere and the event has not been forwarded yet,
                    // chase the component once; otherwise park the event for
                    // replay — the paper's buffering during redeployment.
                    match self.services.locate(name) {
                        Some(there)
                            if there != self.arch.host()
                                && event.param(FORWARDED_MARKER).is_none() =>
                        {
                            let event = event.with_param(FORWARDED_MARKER, true);
                            self.services.send_raw(there, name, &event);
                        }
                        _ => self.services.buffer_event(name, event),
                    }
                }
            }
        }
    }

    /// Drains architecture host-actions and the services outbox into the
    /// simulator.
    fn flush(&mut self, ctx: &mut NodeCtx<'_>) {
        // Keep pumping until neither the architecture nor the meta layer
        // produces more local work.
        loop {
            let pumped = self.arch.pump(ctx.now());
            self.events_routed.add(pumped);
            let actions = self.arch.take_host_actions();
            if actions.is_empty() {
                break;
            }
            for action in actions {
                match action {
                    HostAction::SendRemote {
                        host,
                        to_component,
                        event,
                    } => {
                        if host == self.arch.host() {
                            self.deliver_local(to_component.as_str(), event, false);
                        } else {
                            self.services.send_raw(host, to_component, &event);
                        }
                    }
                    HostAction::SendNamed {
                        to_component,
                        event,
                    } => {
                        // Every named interaction — local or remote — is one
                        // logical-link interaction; the admin's frequency
                        // monitor counts it at the sender.
                        self.services.stats.app_events_emitted += 1;
                        self.admin.observe_interaction(
                            event.source(),
                            to_component.as_str(),
                            &event,
                            ctx.now(),
                        );
                        match self.services.locate(to_component.as_str()) {
                            Some(host) if host == self.arch.host() => {
                                self.deliver_local(to_component.as_str(), event, false);
                            }
                            Some(host) => {
                                self.services.send_raw(host, to_component, &event);
                            }
                            None => {
                                self.services.stats.events_undeliverable += 1;
                            }
                        }
                    }
                    HostAction::SetTimer {
                        component,
                        delay,
                        token,
                    } => {
                        let id = TOKEN_COMPONENT_BASE + self.next_timer;
                        self.next_timer += 1;
                        self.timers.insert(id, (component, token));
                        self.services.journal(JournalRecord::TimerArmed {
                            id,
                            component: component.as_str().to_owned(),
                            token,
                        });
                        ctx.set_timer(delay, id);
                    }
                }
            }
        }
        for (dst, frame) in std::mem::take(&mut self.services.outbox) {
            if dst == self.arch.host() {
                // Local loopback of a control frame.
                if let WireMsg::Raw {
                    to_component,
                    event,
                } = frame
                {
                    if let Ok(event) = Event::decode(&event) {
                        self.deliver_local(to_component.as_str(), event, true);
                    }
                }
                continue;
            }
            let size = frame.wire_size();
            let bytes = frame.encode();
            self.codec_bytes.add(bytes.len() as u64);
            ctx.send(dst, bytes, size);
        }
    }
}

impl PrismHost {
    /// Processes one wire frame. `origin` is the *logical* sender: the
    /// previous hop for directly received frames, or the original source
    /// recovered from a [`WireMsg::Forward`] envelope.
    fn handle_frame(&mut self, origin: HostId, frame: WireMsg) {
        // Any frame from `origin` proves the path from it works right now;
        // stop probing that peer at the backoff cap and retry pending
        // frames at the base RTO (recovers in-flight control traffic
        // quickly once a partition heals or a lossy streak ends).
        if let Some(ch) = self.services.channels.get_mut(&origin) {
            let (now, rto) = (self.services.now, self.services.rto);
            ch.on_peer_activity(now, rto);
        }
        match frame {
            WireMsg::Forward { src, dst, frame } => {
                if dst == self.arch.host() {
                    if let Ok(inner) = WireMsg::decode(&frame) {
                        self.handle_frame(src, inner);
                    }
                } else {
                    // Relay toward the destination.
                    match self.services.next_hop(dst) {
                        Some(hop) => {
                            self.services.stats.frames_forwarded += 1;
                            self.services
                                .outbox
                                .push((hop, WireMsg::Forward { src, dst, frame }));
                        }
                        None => {
                            self.services.stats.frames_unroutable += 1;
                        }
                    }
                }
            }
            WireMsg::Ping { nonce } => {
                // Pings are neighbor-to-neighbor; answer directly.
                self.services.outbox.push((origin, WireMsg::Pong { nonce }));
            }
            WireMsg::Pong { .. } => {
                self.services.probe.record_pong(origin);
            }
            WireMsg::Raw {
                to_component,
                event,
            } => {
                if let Ok(event) = Event::decode(&event) {
                    self.deliver_local(to_component.as_str(), event, false);
                }
            }
            WireMsg::Seq {
                seq,
                to_component,
                event,
            } => {
                // Ack travels back to the origin, possibly multi-hop.
                self.services.wire(origin, WireMsg::Ack { seq });
                let fresh = self
                    .services
                    .channels
                    .entry(origin)
                    .or_default()
                    .on_seq(seq);
                if fresh {
                    if let Ok(event) = Event::decode(&event) {
                        self.deliver_local(to_component.as_str(), event, true);
                    }
                }
            }
            WireMsg::Ack { seq } => {
                if let Some(ch) = self.services.channels.get_mut(&origin) {
                    ch.on_ack(seq);
                }
            }
        }
    }
}

impl Node for PrismHost {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.config.rto, TOKEN_RTO);
        ctx.set_timer(self.config.ping_interval, TOKEN_PING);
        ctx.set_timer(self.config.monitor_window, TOKEN_MONITOR);
        if self.deployer.is_some() {
            ctx.set_timer(self.config.deploy_tick, TOKEN_DEPLOY);
        }
        self.services.now = ctx.now();
        // Checkpoint 0: the pre-run state (initial components + directory),
        // so even a crash before the first periodic checkpoint recovers the
        // deployment the run started from.
        self.checkpoint_now(ctx.now());
        self.flush(ctx);
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        let host = self.arch.host();
        let now = ctx.now();
        self.services.now = now;
        self.services.replaying = true;

        // The state the host actually held at the crash instant — memory is
        // not physically lost in a simulator, so it doubles as the oracle
        // for the recovery self-check below.
        let mut live_components = self.arch.component_snapshots();
        live_components.sort();
        let live_directory = self.services.directory.clone();

        // -- wipe: the crash loses every volatile structure ----------------
        self.arch = Architecture::new(format!("arch-{host}"), host);
        self.app_connector = self.arch.add_connector("bus");
        self.arch
            .attach_monitor(
                self.app_connector,
                EventFrequencyMonitor::new(self.config.monitor_window),
            )
            .expect("connector just created");
        self.services.directory.clear();
        self.services.dir_index.clear();
        self.services.channels.clear();
        self.services.outbox.clear();
        self.services.buffered.clear();
        self.services.probe = ReliabilityProbe::new();
        self.admin = AdminComponent::new(host, &self.config);
        if self.deployer.take().is_some() {
            let mut deployer = DeployerComponent::new(host, &self.config);
            deployer.set_telemetry(self.telemetry.clone());
            self.deployer = Some(deployer);
        }
        self.timers.clear();
        self.next_timer = 0;
        self.windows_since_checkpoint = 0;

        // -- recover: the checkpoint first, then the journal tail ----------
        let recovered = self.services.durable.recover();
        let checkpoint_seq = recovered.checkpoint.as_ref().map_or(0, |c| c.seq);
        let replayed = recovered.tail.len() as u64;
        let torn_bytes = recovered.torn_bytes;

        if let Some(ckpt) = recovered.checkpoint {
            for (name, type_name, state) in &ckpt.components {
                if let Ok(behavior) = self.factory.build(type_name, state) {
                    if let Ok(id) = self.arch.add_boxed_component(name.clone(), behavior) {
                        let _ = self.arch.weld(id, self.app_connector);
                    }
                }
            }
            // The re-attach hooks re-arm timers and the like; those effects
            // are restored from the checkpoint instead, so discard them.
            self.replay_pump(now);
            for (component, raw) in ckpt.directory {
                let there = HostId::new(raw);
                self.services.dir_index.insert(component.clone(), there);
                self.services.directory.insert(component, there);
            }
            for (component, events) in ckpt.buffered {
                let parked: Vec<Event> = events
                    .iter()
                    .filter_map(|bytes| Event::decode(bytes).ok())
                    .collect();
                if !parked.is_empty() {
                    self.services.buffered.insert(component, parked);
                }
            }
            for (peer, next_seq, next_expected) in ckpt.channels {
                self.services.channels.insert(
                    HostId::new(peer),
                    ReliableChannel::restore(next_seq, next_expected),
                );
            }
            for (id, component, token) in ckpt.timers {
                self.timers.insert(id, (Symbol::intern(&component), token));
            }
            self.next_timer = ckpt.next_timer;
            self.admin.restore_durable(&ckpt.admin);
            if let (Some(deployer), Some(blob)) = (self.deployer.as_mut(), ckpt.deployer.as_ref()) {
                deployer.restore_durable(blob);
            }
        }

        // Replay the tail. Every record was journaled *after* its in-memory
        // effect, so re-applying the sequence on the freshly wiped host
        // reproduces the pre-crash state; host actions emitted along the way
        // are discarded (see `replay_pump`).
        let mut drained: BTreeSet<String> = BTreeSet::new();
        let mut attached: Vec<String> = Vec::new();
        for record in recovered.tail {
            match record {
                JournalRecord::Delivery { component, event } => {
                    if let Ok(event) = Event::decode(&event) {
                        if self.arch.publish(&component, event).is_ok() {
                            self.replay_pump(now);
                        }
                    }
                }
                JournalRecord::TimerFired { id } => {
                    if let Some((component, token)) = self.timers.remove(&id) {
                        let _ = self.arch.deliver_timer(component.as_str(), token);
                        self.replay_pump(now);
                    }
                }
                JournalRecord::TimerArmed {
                    id,
                    component,
                    token,
                } => {
                    self.timers.insert(id, (Symbol::intern(&component), token));
                    self.next_timer = self.next_timer.max(id - TOKEN_COMPONENT_BASE + 1);
                }
                JournalRecord::DirectorySet { component, host } => {
                    let there = HostId::new(host);
                    self.services.dir_index.insert(component.clone(), there);
                    self.services.directory.insert(component, there);
                }
                JournalRecord::DirectoryReplaced { directory } => {
                    self.services.dir_index.clear();
                    self.services.directory.clear();
                    for (component, host) in directory {
                        let there = HostId::new(host);
                        self.services.dir_index.insert(component.clone(), there);
                        self.services.directory.insert(component, there);
                    }
                }
                JournalRecord::EventBuffered { component, event } => {
                    if let Ok(event) = Event::decode(&event) {
                        self.services
                            .buffered
                            .entry(component)
                            .or_default()
                            .push(event);
                    }
                }
                JournalRecord::BufferDrained { component } => {
                    self.services.buffered.remove(&component);
                    drained.insert(component);
                }
                JournalRecord::ChannelSend { peer } => {
                    self.services
                        .channels
                        .entry(HostId::new(peer))
                        .or_default()
                        .bump_next_seq();
                }
                JournalRecord::ComponentAttached {
                    name,
                    type_name,
                    state,
                } => {
                    if let Ok(behavior) = self.factory.build(&type_name, &state) {
                        if let Ok(id) = self.arch.add_boxed_component(name.clone(), behavior) {
                            let _ = self.arch.weld(id, self.app_connector);
                        }
                        self.replay_pump(now);
                    }
                    attached.push(name);
                }
                JournalRecord::ComponentDetached { name } => {
                    let _ = self.arch.detach_component(&name);
                }
                JournalRecord::MonitorWindow { admin } => {
                    self.admin.restore_durable(&admin);
                }
                JournalRecord::DeployerState { blob } => {
                    if let Some(deployer) = self.deployer.as_mut() {
                        deployer.restore_durable(&blob);
                    }
                }
            }
        }

        // -- self-check + per-operation verdicts ---------------------------
        let mut recovered_components = self.arch.component_snapshots();
        recovered_components.sort();
        let state_equiv =
            recovered_components == live_components && self.services.directory == live_directory;

        let mut verdicts = Vec::new();
        // A migrant whose attach record reached the journal verifiably
        // landed here; a move the recovered deployer still holds as pending
        // verifiably did not complete.
        for name in attached {
            verdicts.push(OpVerdict {
                kind: OpKind::MigrationMove,
                subject: name,
                completed: true,
            });
        }
        if let Some(deployer) = self.deployer.as_ref() {
            for component in deployer.status().in_flight {
                verdicts.push(OpVerdict {
                    kind: OpKind::MigrationMove,
                    subject: component,
                    completed: false,
                });
            }
        }
        for component in drained {
            verdicts.push(OpVerdict {
                kind: OpKind::BufferedEvent,
                subject: component,
                completed: true,
            });
        }
        for component in self.services.buffered.keys() {
            verdicts.push(OpVerdict {
                kind: OpKind::BufferedEvent,
                subject: component.clone(),
                completed: false,
            });
        }
        // The monitoring window open at the crash is lost by design: its
        // raw counts were volatile, and the journal has no closing record.
        verdicts.push(OpVerdict {
            kind: OpKind::MonitorWindow,
            subject: "window".to_owned(),
            completed: false,
        });

        let at_us = now.as_micros();
        self.telemetry
            .span("prism.recover", at_us, at_us)
            .field("host", host.raw())
            .field("checkpoint_seq", checkpoint_seq)
            .field("replayed", replayed)
            .field("torn_bytes", torn_bytes)
            .field("state_equiv", state_equiv)
            .field("verdicts", verdicts.len())
            .emit();
        for verdict in &verdicts {
            self.telemetry
                .event("prism.recover.verdict", at_us)
                .field("host", host.raw())
                .field("kind", verdict.kind.label())
                .field("subject", verdict.subject.clone())
                .field("completed", verdict.completed)
                .emit();
        }
        self.telemetry
            .metrics()
            .counter("prism.durable.recover.replayed")
            .add(replayed);

        self.recovery_reports.push(RecoveryReport {
            host,
            at: now,
            checkpoint_seq,
            replayed,
            torn_bytes,
            state_equiv,
            verdicts,
        });
        self.services.replaying = false;
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        self.services.now = ctx.now();
        // Wire latency of the frame (queueing + transmission + propagation),
        // in simulation microseconds.
        self.routing_latency
            .observe((ctx.now().as_micros() - msg.sent_at.as_micros()) as f64);
        let Ok(frame) = WireMsg::decode(&msg.payload) else {
            return;
        };
        self.handle_frame(msg.src, frame);
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        self.services.now = ctx.now();
        match token {
            TOKEN_RTO => {
                // Only frames whose exponential backoff has expired go out;
                // a long outage degrades to a low-rate probe instead of a
                // full-backlog resend every RTO tick.
                let (now, rto) = (self.services.now, self.services.rto);
                let mut frames = Vec::new();
                for (peer, ch) in self.services.channels.iter_mut() {
                    for frame in ch.due_retransmits(now, rto) {
                        frames.push((*peer, frame));
                    }
                }
                self.services.stats.retransmissions += frames.len() as u64;
                for (peer, frame) in frames {
                    self.services.wire(peer, frame);
                }
                ctx.set_timer(self.config.rto, TOKEN_RTO);
            }
            TOKEN_PING => {
                let peers: Vec<HostId> = self.services.neighbors.iter().copied().collect();
                for peer in peers {
                    self.services.ping(peer);
                }
                ctx.set_timer(self.config.ping_interval, TOKEN_PING);
            }
            TOKEN_DEPLOY => {
                if let Some(deployer) = self.deployer.as_mut() {
                    let (retried, newly_failed) = deployer.on_deploy_tick(&mut self.services);
                    for component in retried {
                        let move_ctx = deployer.move_ctx(&component);
                        self.telemetry
                            .event("prism.migration.retry", ctx.now().as_micros())
                            .field("host", self.arch.host().raw())
                            .field("component", component)
                            .trace_opt(move_ctx)
                            .emit();
                    }
                    for (component, reason) in newly_failed {
                        let move_ctx = deployer.move_ctx(&component);
                        self.telemetry
                            .event("prism.migration.failed", ctx.now().as_micros())
                            .field("host", self.arch.host().raw())
                            .field("component", component)
                            .field("reason", reason)
                            .trace_opt(move_ctx)
                            .emit();
                    }
                    let blob = deployer.durable_blob();
                    self.services.journal(JournalRecord::DeployerState { blob });
                    ctx.set_timer(self.config.deploy_tick, TOKEN_DEPLOY);
                }
            }
            TOKEN_MONITOR => {
                let reports_before = self.admin.reports_sent();
                self.admin.on_monitor_window(
                    &mut self.arch,
                    &mut self.services,
                    self.app_connector,
                );
                let mut builder = self
                    .telemetry
                    .event("prism.monitor.window", ctx.now().as_micros())
                    .field("host", self.arch.host().raw())
                    .field("reported", self.admin.reports_sent() > reports_before)
                    .field("reports_total", self.admin.reports_sent());
                if let Some(snapshot) = self.admin.last_snapshot() {
                    builder = builder
                        .field("components", snapshot.components.len())
                        .field("total_rate", snapshot.frequencies.values().sum::<f64>());
                }
                builder.emit();
                // A closed window commits the admin's durable state; the
                // window cut short by a crash has no such record, which is
                // what its not-completed recovery verdict reports.
                let admin_blob = self.admin.durable_blob();
                self.services
                    .journal(JournalRecord::MonitorWindow { admin: admin_blob });
                self.windows_since_checkpoint += 1;
                if self.windows_since_checkpoint >= self.config.checkpoint_interval_windows {
                    self.checkpoint_now(ctx.now());
                }
                ctx.set_timer(self.config.monitor_window, TOKEN_MONITOR);
            }
            id => {
                if let Some((component, token)) = self.timers.remove(&id) {
                    self.services.journal(JournalRecord::TimerFired { id });
                    // The component may have migrated away; its timer dies
                    // with the departure.
                    let _ = self.arch.deliver_timer(component.as_str(), token);
                }
            }
        }
        self.flush(ctx);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Builds a bare `HostServices` for unit tests in sibling modules.
    pub(crate) fn services(host: HostId) -> HostServices {
        HostServices::new(host, &HostConfig::default())
    }
}
