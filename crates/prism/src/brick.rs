//! Bricks: the identities and behaviors of architectural elements.

use crate::event::Event;
use crate::symbol::Symbol;
use crate::PrismError;
use redep_model::HostId;
use redep_netsim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

/// Identity of a brick (component or connector) within one architecture.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct BrickId(u64);

impl BrickId {
    pub(crate) const fn new(raw: u64) -> Self {
        BrickId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BrickId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// What a component asked the runtime to do during a callback.
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum ComponentAction {
    /// Route an event through the local connectors welded to this component.
    Emit(Event),
    /// Ship an event to a named component on another host.
    SendRemote {
        host: HostId,
        to_component: Symbol,
        event: Event,
    },
    /// Ship an event to a named component wherever it currently lives
    /// (the host resolves the location through its deployment directory).
    SendNamed { to_component: Symbol, event: Event },
    /// Arm a one-shot timer for this component.
    SetTimer { delay: Duration, token: u64 },
}

/// The interface a component uses to act on the world during a callback.
///
/// As with the simulator's node contexts, actions are buffered and applied
/// after the callback returns, which keeps event processing single-pass and
/// deterministic.
#[derive(Debug)]
pub struct ComponentCtx<'a> {
    component: Symbol,
    host: HostId,
    now: SimTime,
    actions: &'a mut Vec<ComponentAction>,
}

impl<'a> ComponentCtx<'a> {
    pub(crate) fn new(
        component: impl Into<Symbol>,
        host: HostId,
        now: SimTime,
        actions: &'a mut Vec<ComponentAction>,
    ) -> Self {
        ComponentCtx {
            component: component.into(),
            host,
            now,
            actions,
        }
    }

    /// This component's instance name.
    pub fn component(&self) -> &str {
        self.component.as_str()
    }

    /// The host this architecture runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Emits an event through every connector welded to this component.
    pub fn emit(&mut self, mut event: Event) {
        event.set_source(self.component);
        self.actions.push(ComponentAction::Emit(event));
    }

    /// Sends an event to the component named `to_component` on `host`
    /// (through the host's distribution transport).
    pub fn send_remote(&mut self, host: HostId, to_component: impl Into<Symbol>, mut event: Event) {
        event.set_source(self.component);
        self.actions.push(ComponentAction::SendRemote {
            host,
            to_component: to_component.into(),
            event,
        });
    }

    /// Sends an event to the component named `to_component`, wherever it is
    /// currently deployed — locally or on a remote host. The host runtime
    /// resolves the location through its deployment directory, so senders
    /// keep working across migrations of their peers.
    pub fn send_to(&mut self, to_component: impl Into<Symbol>, mut event: Event) {
        event.set_source(self.component);
        self.actions.push(ComponentAction::SendNamed {
            to_component: to_component.into(),
            event,
        });
    }

    /// Arms a one-shot timer delivered to [`ComponentBehavior::on_timer`].
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.actions
            .push(ComponentAction::SetTimer { delay, token });
    }
}

/// Application behavior of a component.
///
/// Implementations are plain Rust types; the architecture owns them as
/// `Box<dyn ComponentBehavior>`. For a component to be **migratable** (the
/// paper's `Serializable` components shipped between address spaces), give it
/// a stable [`type_name`](ComponentBehavior::type_name), implement
/// [`snapshot`](ComponentBehavior::snapshot), and register a constructor with
/// the [`ComponentFactory`].
pub trait ComponentBehavior: Any + Send {
    /// Stable type name used to reconstitute the component after migration.
    fn type_name(&self) -> &str;

    /// Handles an event routed to this component.
    fn handle(&mut self, ctx: &mut ComponentCtx<'_>, event: &Event) {
        let _ = (ctx, event);
    }

    /// Called when the component is (re)attached to an architecture —
    /// at startup and after each migration.
    fn on_attach(&mut self, ctx: &mut ComponentCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a timer armed via [`ComponentCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut ComponentCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Serializes the component's migratable state.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }
}

/// Reconstitutes components from their type name and snapshot — the
/// "installed software" every host needs in order to receive migrants.
///
/// # Example
///
/// ```
/// use redep_prism::{ComponentFactory, ComponentBehavior, ComponentCtx, Event};
///
/// #[derive(Default)]
/// struct Counter { count: u64 }
/// impl ComponentBehavior for Counter {
///     fn type_name(&self) -> &str { "counter" }
///     fn snapshot(&self) -> Vec<u8> { self.count.to_le_bytes().to_vec() }
/// }
///
/// let mut factory = ComponentFactory::new();
/// factory.register("counter", |state| {
///     let mut c = Counter::default();
///     if state.len() == 8 {
///         c.count = u64::from_le_bytes(state.try_into().unwrap());
///     }
///     Box::new(c)
/// });
/// let migrant = factory.build("counter", &42u64.to_le_bytes())?;
/// assert_eq!(migrant.snapshot(), 42u64.to_le_bytes());
/// # Ok::<(), redep_prism::PrismError>(())
/// ```
#[derive(Default)]
pub struct ComponentFactory {
    constructors: BTreeMap<String, Constructor>,
}

/// A constructor reconstituting a component from its state snapshot.
pub type Constructor = Box<dyn Fn(&[u8]) -> Box<dyn ComponentBehavior> + Send>;

impl fmt::Debug for ComponentFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentFactory")
            .field("types", &self.constructors.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ComponentFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        ComponentFactory::default()
    }

    /// Registers a constructor for `type_name`, replacing any previous one.
    pub fn register(
        &mut self,
        type_name: impl Into<String>,
        constructor: impl Fn(&[u8]) -> Box<dyn ComponentBehavior> + Send + 'static,
    ) {
        self.constructors
            .insert(type_name.into(), Box::new(constructor));
    }

    /// Returns `true` if the type can be built.
    pub fn knows(&self, type_name: &str) -> bool {
        self.constructors.contains_key(type_name)
    }

    /// Registered type names in order.
    pub fn type_names(&self) -> Vec<&str> {
        self.constructors.keys().map(String::as_str).collect()
    }

    /// Reconstitutes a component from its snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnregisteredType`] for unknown types.
    pub fn build(
        &self,
        type_name: &str,
        state: &[u8],
    ) -> Result<Box<dyn ComponentBehavior>, PrismError> {
        let ctor = self
            .constructors
            .get(type_name)
            .ok_or_else(|| PrismError::UnregisteredType(type_name.to_owned()))?;
        Ok(ctor(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe;
    impl ComponentBehavior for Probe {
        fn type_name(&self) -> &str {
            "probe"
        }
    }

    #[test]
    fn ctx_buffers_and_stamps_source() {
        let mut actions = Vec::new();
        let mut ctx = ComponentCtx::new("gui", HostId::new(2), SimTime::ZERO, &mut actions);
        ctx.emit(Event::notification("n"));
        ctx.send_remote(HostId::new(1), "tracker", Event::request("r"));
        ctx.set_timer(Duration::from_millis(5), 1);
        assert_eq!(actions.len(), 3);
        match &actions[0] {
            ComponentAction::Emit(e) => assert_eq!(e.source(), Some("gui")),
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[1] {
            ComponentAction::SendRemote {
                host,
                to_component,
                event,
            } => {
                assert_eq!(*host, HostId::new(1));
                assert_eq!(to_component, "tracker");
                assert_eq!(event.source(), Some("gui"));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn factory_builds_registered_types() {
        let mut f = ComponentFactory::new();
        f.register("probe", |_| Box::new(Probe));
        assert!(f.knows("probe"));
        assert!(f.build("probe", &[]).is_ok());
        assert_eq!(f.type_names(), ["probe"]);
    }

    #[test]
    fn factory_rejects_unknown_types() {
        let f = ComponentFactory::new();
        assert_eq!(
            f.build("ghost", &[]).map(|_| ()),
            Err(PrismError::UnregisteredType("ghost".into()))
        );
    }

    #[test]
    fn default_behavior_methods_are_noops() {
        let mut p = Probe;
        assert!(p.snapshot().is_empty());
        let mut actions = Vec::new();
        let mut ctx = ComponentCtx::new("p", HostId::new(0), SimTime::ZERO, &mut actions);
        p.handle(&mut ctx, &Event::notification("n"));
        p.on_attach(&mut ctx);
        p.on_timer(&mut ctx, 0);
        assert!(actions.is_empty());
    }

    #[test]
    fn brick_id_display() {
        assert_eq!(BrickId::new(4).to_string(), "b4");
    }
}
