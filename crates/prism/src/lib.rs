//! # redep-prism
//!
//! A Rust reproduction of **Prism-MW**, the "extensible middleware platform
//! that enables efficient implementation, deployment, and execution of
//! distributed software systems in terms of their architectural elements:
//! components, connectors, configurations, and events" (Mikic-Rakic &
//! Medvidovic, Middleware 2003), as used by the DSN'04 framework paper.
//!
//! The class structure of the paper's Figure 5 maps onto this crate as:
//!
//! | Prism-MW (Java)            | redep-prism (Rust)                          |
//! |----------------------------|----------------------------------------------|
//! | `Brick`                    | [`BrickId`] + the architecture's slot tables |
//! | `Component`                | [`ComponentBehavior`] implementations        |
//! | `Connector`                | [`Connector`]                                |
//! | `Architecture`             | [`Architecture`]                             |
//! | `Event`                    | [`Event`]                                    |
//! | `DistributionConnector`    | [`PrismHost`]'s reliable/raw transport       |
//! | `IScaffold` thread pool    | [`Architecture::pump`] (inline, deterministic) |
//! | `IMonitor` implementations | [`EventFrequencyMonitor`], [`ReliabilityProbe`] |
//! | `AdminComponent`           | [`AdminComponent`]                           |
//! | `DeployerComponent`        | [`DeployerComponent`]                        |
//! | `Serializable` components  | [`ComponentFactory`] + state bytes           |
//!
//! Architectures run on simulated hosts ([`PrismHost`] implements
//! [`redep_netsim::Node`]), so whole distributed Prism systems execute
//! deterministically inside [`redep_netsim::Simulator`].
//!
//! The two halves of the paper's Monitor and Effector components live here:
//! the *platform-dependent* parts hook into connectors and the host transport
//! ([`monitor`]), and the *platform-independent* parts (ε-stability detection,
//! migration coordination with buffering) sit above them ([`stability`],
//! [`admin`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admin;
pub mod architecture;
pub mod brick;
pub mod codec;
pub mod connector;
pub mod durable;
pub mod error;
pub mod event;
pub mod host;
pub mod monitor;
pub mod stability;
pub mod symbol;
pub mod transport;
pub mod workload;

pub use admin::{AdminComponent, DeployerComponent, DeploymentCommand, RedeploymentStatus};
pub use architecture::Architecture;
pub use brick::{BrickId, ComponentBehavior, ComponentCtx, ComponentFactory};
pub use codec::{set_wire_codec, wire_codec, WireCodec};
pub use connector::Connector;
pub use durable::{
    Checkpoint, DurableBackend, DurableStore, JournalRecord, OpKind, OpVerdict, RecoveredState,
    RecoveryReport,
};
pub use error::PrismError;
pub use event::{Event, EventKind};
pub use host::{HostServices, PrismHost};
pub use monitor::{EventFrequencyMonitor, MonitoringSnapshot, ReliabilityProbe};
pub use redep_telemetry::{SpanIdGen, TraceCtx};
pub use stability::StabilityGauge;
pub use symbol::Symbol;
pub use transport::ReliableChannel;
pub use workload::WorkloadComponent;
