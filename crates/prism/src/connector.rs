//! Connectors: the routing elements between components.

use crate::brick::BrickId;
use crate::monitor::ConnectorMonitor;
use std::collections::BTreeSet;
use std::fmt;

/// A connector routes every event emitted by one attached component to all
/// other attached components, and taps its traffic for monitors — the
/// middleware hook the paper's `EvtFrequencyMonitor` uses.
pub struct Connector {
    id: BrickId,
    name: String,
    attached: BTreeSet<BrickId>,
    monitors: Vec<Box<dyn ConnectorMonitor>>,
}

impl fmt::Debug for Connector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connector")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("attached", &self.attached)
            .field("monitors", &self.monitors.len())
            .finish()
    }
}

impl Connector {
    pub(crate) fn new(id: BrickId, name: impl Into<String>) -> Self {
        Connector {
            id,
            name: name.into(),
            attached: BTreeSet::new(),
            monitors: Vec::new(),
        }
    }

    /// The connector's brick id.
    pub fn id(&self) -> BrickId {
        self.id
    }

    /// The connector's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ids of the components currently welded to this connector.
    pub fn attached(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.attached.iter().copied()
    }

    /// Number of welded components.
    pub fn fan(&self) -> usize {
        self.attached.len()
    }

    pub(crate) fn weld(&mut self, component: BrickId) {
        self.attached.insert(component);
    }

    pub(crate) fn unweld(&mut self, component: BrickId) -> bool {
        self.attached.remove(&component)
    }

    pub(crate) fn add_monitor(&mut self, monitor: Box<dyn ConnectorMonitor>) {
        self.monitors.push(monitor);
    }

    pub(crate) fn monitors(&self) -> &[Box<dyn ConnectorMonitor>] {
        &self.monitors
    }

    pub(crate) fn monitors_mut(&mut self) -> &mut [Box<dyn ConnectorMonitor>] {
        &mut self.monitors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weld_and_unweld() {
        let mut c = Connector::new(BrickId::new(0), "bus");
        c.weld(BrickId::new(1));
        c.weld(BrickId::new(2));
        assert_eq!(c.fan(), 2);
        assert!(c.unweld(BrickId::new(1)));
        assert!(!c.unweld(BrickId::new(1)));
        assert_eq!(c.attached().collect::<Vec<_>>(), [BrickId::new(2)]);
    }
}
