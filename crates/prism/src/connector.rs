//! Connectors: the routing elements between components.

use crate::brick::BrickId;
use crate::monitor::ConnectorMonitor;
use std::fmt;

/// A connector routes every event emitted by one attached component to all
/// other attached components, and taps its traffic for monitors — the
/// middleware hook the paper's `EvtFrequencyMonitor` uses.
pub struct Connector {
    id: BrickId,
    name: String,
    /// Welded component ids, kept sorted — binary-searched on weld/unweld,
    /// scanned linearly (cache-friendly) on every routed emission.
    attached: Vec<BrickId>,
    monitors: Vec<Box<dyn ConnectorMonitor>>,
}

impl fmt::Debug for Connector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connector")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("attached", &self.attached)
            .field("monitors", &self.monitors.len())
            .finish()
    }
}

impl Connector {
    pub(crate) fn new(id: BrickId, name: impl Into<String>) -> Self {
        Connector {
            id,
            name: name.into(),
            attached: Vec::new(),
            monitors: Vec::new(),
        }
    }

    /// The connector's brick id.
    pub fn id(&self) -> BrickId {
        self.id
    }

    /// The connector's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ids of the components currently welded to this connector.
    pub fn attached(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.attached.iter().copied()
    }

    /// Number of welded components.
    pub fn fan(&self) -> usize {
        self.attached.len()
    }

    pub(crate) fn weld(&mut self, component: BrickId) {
        if let Err(pos) = self.attached.binary_search(&component) {
            self.attached.insert(pos, component);
        }
    }

    pub(crate) fn unweld(&mut self, component: BrickId) -> bool {
        match self.attached.binary_search(&component) {
            Ok(pos) => {
                self.attached.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    pub(crate) fn add_monitor(&mut self, monitor: Box<dyn ConnectorMonitor>) {
        self.monitors.push(monitor);
    }

    pub(crate) fn monitors(&self) -> &[Box<dyn ConnectorMonitor>] {
        &self.monitors
    }

    pub(crate) fn monitors_mut(&mut self) -> &mut [Box<dyn ConnectorMonitor>] {
        &mut self.monitors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weld_and_unweld() {
        let mut c = Connector::new(BrickId::new(0), "bus");
        c.weld(BrickId::new(1));
        c.weld(BrickId::new(2));
        assert_eq!(c.fan(), 2);
        assert!(c.unweld(BrickId::new(1)));
        assert!(!c.unweld(BrickId::new(1)));
        assert_eq!(c.attached().collect::<Vec<_>>(), [BrickId::new(2)]);
    }
}
