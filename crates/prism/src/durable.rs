//! Per-host durability: a write-ahead journal plus periodic checkpoints, so
//! a crashed host restarts by *replay* instead of from nothing — and can say
//! exactly which in-flight operations completed.
//!
//! # Store layout
//!
//! A [`DurableStore`] owns two byte streams behind a [`DurableBackend`]:
//!
//! * the **checkpoint**: one [`Checkpoint`] snapshot of the host's full
//!   durable state (components, directory, buffers, channel sequence state,
//!   component timers, admin/deployer blobs), replaced atomically on every
//!   [`DurableStore::checkpoint`] call, which also truncates the journal;
//! * the **journal**: an append-only sequence of [`JournalRecord`]s, each
//!   framed as a LEB128 length prefix followed by the record body (the same
//!   varint primitives as the wire codec in [`crate::codec`]).
//!
//! Recovery ([`DurableStore::recover`]) decodes the checkpoint, then decodes
//! journal records until the bytes run out *or a record is torn* — a partial
//! final record (a crash mid-append) decodes as a truncated varint or
//! truncated byte slice, and recovery simply stops there: everything before
//! the torn record is replayed, the tail is ignored and its length reported.
//!
//! # Determinism rules
//!
//! The default backend is in-memory and the store is driven only by the
//! deterministic simulation, so **two identical runs produce byte-identical
//! checkpoint + journal contents** ([`DurableStore::digest`] is the
//! equality witness the fault campaign checks). Nothing in this module reads
//! clocks, RNGs, or iteration orders that are not already deterministic
//! (`BTreeMap` everywhere in the host state it serializes).
//!
//! # Detectable recovery
//!
//! In the memento style, recovery does not merely restore state — it reports
//! a verdict for every operation that was in flight at the crash:
//! [`OpVerdict`] says whether a migration move, a buffered event, or the
//! open monitoring window completed, and [`RecoveryReport`] carries the
//! verdict set plus a self-check (`state_equiv`) that the replayed state is
//! identical to the state the host actually held at the crash instant.

use crate::codec::{get_bytes, get_varint, put_bytes, put_varint};
use crate::error::PrismError;
use redep_model::HostId;
use redep_netsim::SimTime;
use redep_telemetry::Counter;

/// One durable mutation of host state, appended to the write-ahead journal
/// *after* the in-memory effect is applied (the journal is a redo log; every
/// record is idempotent to re-apply on a freshly wiped host).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JournalRecord {
    /// An application event was published into a local component. Replay
    /// re-publishes it and pumps the architecture; the internal emission
    /// cascade re-runs deterministically.
    Delivery {
        /// Target component instance name.
        component: String,
        /// The encoded [`Event`](crate::Event).
        event: Vec<u8>,
    },
    /// A component timer with this id fired (and was consumed).
    TimerFired {
        /// The host-level timer id (`TOKEN_COMPONENT_BASE + n`).
        id: u64,
    },
    /// A component armed a timer: id → (component, component-level token).
    TimerArmed {
        /// The host-level timer id.
        id: u64,
        /// Component instance name the timer belongs to.
        component: String,
        /// The component-level token to deliver when it fires.
        token: u64,
    },
    /// One directory entry was written (component → host).
    DirectorySet {
        /// Component instance name.
        component: String,
        /// Raw id of the host now holding it.
        host: u32,
    },
    /// The whole directory was replaced.
    DirectoryReplaced {
        /// The full new mapping (component name, raw host id).
        directory: Vec<(String, u32)>,
    },
    /// An event was parked for a component that is absent (mid-migration).
    EventBuffered {
        /// Component the event waits for.
        component: String,
        /// The encoded [`Event`](crate::Event).
        event: Vec<u8>,
    },
    /// A component's parked events were all drained (replayed on arrival).
    BufferDrained {
        /// Component whose buffer emptied.
        component: String,
    },
    /// A reliable-channel send to this peer consumed a sequence number.
    /// Replay restores the sender-side `next_seq` exactly, so a recovered
    /// host never reuses a sequence number its peer has already seen (which
    /// the receiver's dedup watermark would silently swallow — a deadlock).
    ChannelSend {
        /// Raw id of the peer host.
        peer: u32,
    },
    /// A migrant component landed here: the transfer was applied and acked.
    /// Its presence in the journal tail is the *completed* verdict for that
    /// migration move.
    ComponentAttached {
        /// Component instance name.
        name: String,
        /// Factory type name used to rebuild it.
        type_name: String,
        /// Serialized component state.
        state: Vec<u8>,
    },
    /// A component was detached and shipped away.
    ComponentDetached {
        /// Component instance name.
        name: String,
    },
    /// A monitoring window closed; carries the admin component's durable
    /// state as of the close. The window *in flight* at a crash has no such
    /// record — its counts are lost by design, which is exactly what the
    /// `MonitorWindow` not-completed verdict reports.
    MonitorWindow {
        /// Serialized admin durable state (see `AdminComponent`).
        admin: Vec<u8>,
    },
    /// The deployer's durable state after deployer activity (an epoch
    /// opened, an ack/nack processed, a retry tick). Coarse-grained on
    /// purpose: deployer transitions are rare, and replacing the whole blob
    /// is simpler to get exactly right than replaying per-field deltas.
    DeployerState {
        /// Serialized deployer durable state (see `DeployerComponent`).
        blob: Vec<u8>,
    },
}

const TAG_DELIVERY: u64 = 0;
const TAG_TIMER_FIRED: u64 = 1;
const TAG_TIMER_ARMED: u64 = 2;
const TAG_DIRECTORY_SET: u64 = 3;
const TAG_DIRECTORY_REPLACED: u64 = 4;
const TAG_EVENT_BUFFERED: u64 = 5;
const TAG_BUFFER_DRAINED: u64 = 6;
const TAG_CHANNEL_SEND: u64 = 7;
const TAG_COMPONENT_ATTACHED: u64 = 8;
const TAG_COMPONENT_DETACHED: u64 = 9;
const TAG_MONITOR_WINDOW: u64 = 10;
const TAG_DEPLOYER_STATE: u64 = 11;

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, PrismError> {
    let b = get_bytes(bytes, pos)?;
    String::from_utf8(b.to_vec()).map_err(|_| PrismError::Codec("invalid utf-8".into()))
}

impl JournalRecord {
    /// Encodes the record body (tag + fields) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Delivery { component, event } => {
                put_varint(out, TAG_DELIVERY);
                put_str(out, component);
                put_bytes(out, event);
            }
            JournalRecord::TimerFired { id } => {
                put_varint(out, TAG_TIMER_FIRED);
                put_varint(out, *id);
            }
            JournalRecord::TimerArmed {
                id,
                component,
                token,
            } => {
                put_varint(out, TAG_TIMER_ARMED);
                put_varint(out, *id);
                put_str(out, component);
                put_varint(out, *token);
            }
            JournalRecord::DirectorySet { component, host } => {
                put_varint(out, TAG_DIRECTORY_SET);
                put_str(out, component);
                put_varint(out, u64::from(*host));
            }
            JournalRecord::DirectoryReplaced { directory } => {
                put_varint(out, TAG_DIRECTORY_REPLACED);
                put_varint(out, directory.len() as u64);
                for (component, host) in directory {
                    put_str(out, component);
                    put_varint(out, u64::from(*host));
                }
            }
            JournalRecord::EventBuffered { component, event } => {
                put_varint(out, TAG_EVENT_BUFFERED);
                put_str(out, component);
                put_bytes(out, event);
            }
            JournalRecord::BufferDrained { component } => {
                put_varint(out, TAG_BUFFER_DRAINED);
                put_str(out, component);
            }
            JournalRecord::ChannelSend { peer } => {
                put_varint(out, TAG_CHANNEL_SEND);
                put_varint(out, u64::from(*peer));
            }
            JournalRecord::ComponentAttached {
                name,
                type_name,
                state,
            } => {
                put_varint(out, TAG_COMPONENT_ATTACHED);
                put_str(out, name);
                put_str(out, type_name);
                put_bytes(out, state);
            }
            JournalRecord::ComponentDetached { name } => {
                put_varint(out, TAG_COMPONENT_DETACHED);
                put_str(out, name);
            }
            JournalRecord::MonitorWindow { admin } => {
                put_varint(out, TAG_MONITOR_WINDOW);
                put_bytes(out, admin);
            }
            JournalRecord::DeployerState { blob } => {
                put_varint(out, TAG_DEPLOYER_STATE);
                put_bytes(out, blob);
            }
        }
    }

    /// Decodes one record body.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::Codec`] on a truncated or unknown record.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Self, PrismError> {
        let tag = get_varint(bytes, pos)?;
        let rec = match tag {
            TAG_DELIVERY => JournalRecord::Delivery {
                component: get_str(bytes, pos)?,
                event: get_bytes(bytes, pos)?.to_vec(),
            },
            TAG_TIMER_FIRED => JournalRecord::TimerFired {
                id: get_varint(bytes, pos)?,
            },
            TAG_TIMER_ARMED => JournalRecord::TimerArmed {
                id: get_varint(bytes, pos)?,
                component: get_str(bytes, pos)?,
                token: get_varint(bytes, pos)?,
            },
            TAG_DIRECTORY_SET => JournalRecord::DirectorySet {
                component: get_str(bytes, pos)?,
                host: u32::try_from(get_varint(bytes, pos)?)
                    .map_err(|_| PrismError::Codec("host id out of range".into()))?,
            },
            TAG_DIRECTORY_REPLACED => {
                let n = get_varint(bytes, pos)? as usize;
                let mut directory = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let component = get_str(bytes, pos)?;
                    let host = u32::try_from(get_varint(bytes, pos)?)
                        .map_err(|_| PrismError::Codec("host id out of range".into()))?;
                    directory.push((component, host));
                }
                JournalRecord::DirectoryReplaced { directory }
            }
            TAG_EVENT_BUFFERED => JournalRecord::EventBuffered {
                component: get_str(bytes, pos)?,
                event: get_bytes(bytes, pos)?.to_vec(),
            },
            TAG_BUFFER_DRAINED => JournalRecord::BufferDrained {
                component: get_str(bytes, pos)?,
            },
            TAG_CHANNEL_SEND => JournalRecord::ChannelSend {
                peer: u32::try_from(get_varint(bytes, pos)?)
                    .map_err(|_| PrismError::Codec("host id out of range".into()))?,
            },
            TAG_COMPONENT_ATTACHED => JournalRecord::ComponentAttached {
                name: get_str(bytes, pos)?,
                type_name: get_str(bytes, pos)?,
                state: get_bytes(bytes, pos)?.to_vec(),
            },
            TAG_COMPONENT_DETACHED => JournalRecord::ComponentDetached {
                name: get_str(bytes, pos)?,
            },
            TAG_MONITOR_WINDOW => JournalRecord::MonitorWindow {
                admin: get_bytes(bytes, pos)?.to_vec(),
            },
            TAG_DEPLOYER_STATE => JournalRecord::DeployerState {
                blob: get_bytes(bytes, pos)?.to_vec(),
            },
            other => {
                return Err(PrismError::Codec(format!("unknown journal tag {other}")));
            }
        };
        Ok(rec)
    }
}

/// Magic prefix of an encoded [`Checkpoint`].
const CKPT_MAGIC: &[u8; 4] = b"RDCP";
/// Checkpoint format version.
const CKPT_VERSION: u64 = 1;

/// A full snapshot of one host's durable state, written periodically (every
/// `checkpoint_interval_windows` monitoring windows) and at start.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Checkpoint {
    /// Monotonic checkpoint sequence number (0 = the at-start snapshot).
    pub seq: u64,
    /// Simulated instant the snapshot was taken, in microseconds.
    pub at_us: u64,
    /// Every attached app component: (instance name, type name, state).
    pub components: Vec<(String, String, Vec<u8>)>,
    /// The host's component directory: (component name, raw host id).
    pub directory: Vec<(String, u32)>,
    /// Parked events per absent component: (component, encoded events).
    pub buffered: Vec<(String, Vec<Vec<u8>>)>,
    /// Reliable-channel sequence state per peer:
    /// (raw peer id, sender `next_seq`, receiver `next_expected`).
    ///
    /// In-flight (unacked) frames are *not* persisted: the peer's
    /// retransmission sweep, the NACK path, and the deployer's holder
    /// re-resolution recover anything that mattered — that loss is exactly
    /// what the not-completed verdicts make visible.
    pub channels: Vec<(u32, u64, u64)>,
    /// Live component timers: (host-level id, component, component token).
    pub timers: Vec<(u64, String, u64)>,
    /// Next component-timer ordinal (so recovered ids never collide).
    pub next_timer: u64,
    /// The admin component's durable state blob.
    pub admin: Vec<u8>,
    /// The deployer's durable state blob, on the master host.
    pub deployer: Option<Vec<u8>>,
}

impl Checkpoint {
    /// Encodes the checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(CKPT_MAGIC);
        put_varint(&mut out, CKPT_VERSION);
        put_varint(&mut out, self.seq);
        put_varint(&mut out, self.at_us);
        put_varint(&mut out, self.components.len() as u64);
        for (name, type_name, state) in &self.components {
            put_str(&mut out, name);
            put_str(&mut out, type_name);
            put_bytes(&mut out, state);
        }
        put_varint(&mut out, self.directory.len() as u64);
        for (component, host) in &self.directory {
            put_str(&mut out, component);
            put_varint(&mut out, u64::from(*host));
        }
        put_varint(&mut out, self.buffered.len() as u64);
        for (component, events) in &self.buffered {
            put_str(&mut out, component);
            put_varint(&mut out, events.len() as u64);
            for event in events {
                put_bytes(&mut out, event);
            }
        }
        put_varint(&mut out, self.channels.len() as u64);
        for (peer, next_seq, next_expected) in &self.channels {
            put_varint(&mut out, u64::from(*peer));
            put_varint(&mut out, *next_seq);
            put_varint(&mut out, *next_expected);
        }
        put_varint(&mut out, self.timers.len() as u64);
        for (id, component, token) in &self.timers {
            put_varint(&mut out, *id);
            put_str(&mut out, component);
            put_varint(&mut out, *token);
        }
        put_varint(&mut out, self.next_timer);
        put_bytes(&mut out, &self.admin);
        match &self.deployer {
            None => put_varint(&mut out, 0),
            Some(blob) => {
                put_varint(&mut out, 1);
                put_bytes(&mut out, blob);
            }
        }
        out
    }

    /// Decodes a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::Codec`] on a missing magic, unknown version, or
    /// truncated field.
    pub fn decode(bytes: &[u8]) -> Result<Self, PrismError> {
        if bytes.len() < 4 || &bytes[..4] != CKPT_MAGIC {
            return Err(PrismError::Codec("bad checkpoint magic".into()));
        }
        let mut pos = 4usize;
        let pos = &mut pos;
        let version = get_varint(bytes, pos)?;
        if version != CKPT_VERSION {
            return Err(PrismError::Codec(format!(
                "unknown checkpoint version {version}"
            )));
        }
        let seq = get_varint(bytes, pos)?;
        let at_us = get_varint(bytes, pos)?;
        let n = get_varint(bytes, pos)? as usize;
        let mut components = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = get_str(bytes, pos)?;
            let type_name = get_str(bytes, pos)?;
            let state = get_bytes(bytes, pos)?.to_vec();
            components.push((name, type_name, state));
        }
        let n = get_varint(bytes, pos)? as usize;
        let mut directory = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let component = get_str(bytes, pos)?;
            let host = u32::try_from(get_varint(bytes, pos)?)
                .map_err(|_| PrismError::Codec("host id out of range".into()))?;
            directory.push((component, host));
        }
        let n = get_varint(bytes, pos)? as usize;
        let mut buffered = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let component = get_str(bytes, pos)?;
            let m = get_varint(bytes, pos)? as usize;
            let mut events = Vec::with_capacity(m.min(1024));
            for _ in 0..m {
                events.push(get_bytes(bytes, pos)?.to_vec());
            }
            buffered.push((component, events));
        }
        let n = get_varint(bytes, pos)? as usize;
        let mut channels = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let peer = u32::try_from(get_varint(bytes, pos)?)
                .map_err(|_| PrismError::Codec("host id out of range".into()))?;
            let next_seq = get_varint(bytes, pos)?;
            let next_expected = get_varint(bytes, pos)?;
            channels.push((peer, next_seq, next_expected));
        }
        let n = get_varint(bytes, pos)? as usize;
        let mut timers = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let id = get_varint(bytes, pos)?;
            let component = get_str(bytes, pos)?;
            let token = get_varint(bytes, pos)?;
            timers.push((id, component, token));
        }
        let next_timer = get_varint(bytes, pos)?;
        let admin = get_bytes(bytes, pos)?.to_vec();
        let deployer = match get_varint(bytes, pos)? {
            0 => None,
            1 => Some(get_bytes(bytes, pos)?.to_vec()),
            other => {
                return Err(PrismError::Codec(format!(
                    "bad deployer presence flag {other}"
                )));
            }
        };
        Ok(Checkpoint {
            seq,
            at_us,
            components,
            directory,
            buffered,
            channels,
            timers,
            next_timer,
            admin,
            deployer,
        })
    }
}

/// Where checkpoint and journal bytes physically live.
///
/// The simulator uses the deterministic in-memory backend; real deployments
/// can opt into the file-backed one behind the `durable-file` feature.
pub trait DurableBackend: Send {
    /// Atomically replaces the checkpoint and truncates the journal.
    fn write_checkpoint(&mut self, bytes: &[u8]);
    /// Appends one framed record to the journal.
    fn append(&mut self, bytes: &[u8]);
    /// The current checkpoint bytes, if a checkpoint was ever written.
    fn read_checkpoint(&self) -> Option<Vec<u8>>;
    /// The journal bytes appended since the last checkpoint.
    fn read_journal(&self) -> Vec<u8>;
}

/// Deterministic in-memory backend: the simulator default.
#[derive(Default, Debug)]
pub struct MemBackend {
    checkpoint: Option<Vec<u8>>,
    journal: Vec<u8>,
}

impl DurableBackend for MemBackend {
    fn write_checkpoint(&mut self, bytes: &[u8]) {
        self.checkpoint = Some(bytes.to_vec());
        self.journal.clear();
    }

    fn append(&mut self, bytes: &[u8]) {
        self.journal.extend_from_slice(bytes);
    }

    fn read_checkpoint(&self) -> Option<Vec<u8>> {
        self.checkpoint.clone()
    }

    fn read_journal(&self) -> Vec<u8> {
        self.journal.clone()
    }
}

/// File-backed backend: `host-<id>.ckpt` (replaced via temp file + rename)
/// and `host-<id>.wal` (append + flush per record) under one directory.
#[cfg(feature = "durable-file")]
pub struct FileBackend {
    ckpt_path: std::path::PathBuf,
    wal_path: std::path::PathBuf,
    wal: std::fs::File,
}

#[cfg(feature = "durable-file")]
impl FileBackend {
    /// Opens (creating as needed) the per-host store under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory or WAL cannot be created.
    pub fn open(dir: &std::path::Path, host: HostId) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let ckpt_path = dir.join(format!("host-{}.ckpt", host.raw()));
        let wal_path = dir.join(format!("host-{}.wal", host.raw()));
        let wal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        Ok(FileBackend {
            ckpt_path,
            wal_path,
            wal,
        })
    }
}

#[cfg(feature = "durable-file")]
impl DurableBackend for FileBackend {
    fn write_checkpoint(&mut self, bytes: &[u8]) {
        use std::io::Write as _;
        let tmp = self.ckpt_path.with_extension("ckpt.tmp");
        // Crash-safe replace: write the new snapshot fully, then rename over
        // the old one; the journal is only truncated after the snapshot is
        // durably in place.
        if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, &self.ckpt_path).is_ok() {
            if let Ok(f) = std::fs::OpenOptions::new()
                .write(true)
                .truncate(true)
                .create(true)
                .open(&self.wal_path)
            {
                drop(std::mem::replace(&mut self.wal, f));
            }
            let _ = self.wal.flush();
        }
    }

    fn append(&mut self, bytes: &[u8]) {
        use std::io::Write as _;
        let _ = self.wal.write_all(bytes);
        let _ = self.wal.flush();
    }

    fn read_checkpoint(&self) -> Option<Vec<u8>> {
        std::fs::read(&self.ckpt_path).ok()
    }

    fn read_journal(&self) -> Vec<u8> {
        std::fs::read(&self.wal_path).unwrap_or_default()
    }
}

/// Everything a recovery found in the store.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RecoveredState {
    /// The last checkpoint, if any was written (and decodable).
    pub checkpoint: Option<Checkpoint>,
    /// Journal records appended after that checkpoint, in append order,
    /// up to (excluding) the first torn record.
    pub tail: Vec<JournalRecord>,
    /// Bytes ignored at the end of the journal because the final record was
    /// torn (partially written at the crash). 0 on a clean journal.
    pub torn_bytes: usize,
}

/// The per-host durable store: write-ahead journal + checkpoint snapshots.
pub struct DurableStore {
    backend: Box<dyn DurableBackend>,
    scratch: Vec<u8>,
    records: u64,
    bytes: u64,
    checkpoints: u64,
    record_counter: Counter,
    byte_counter: Counter,
    checkpoint_counter: Counter,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .field("checkpoints", &self.checkpoints)
            .finish()
    }
}

impl Default for DurableStore {
    fn default() -> Self {
        DurableStore::in_memory()
    }
}

impl DurableStore {
    /// Creates a store over the deterministic in-memory backend.
    pub fn in_memory() -> Self {
        DurableStore::with_backend(Box::new(MemBackend::default()))
    }

    /// Creates a store over an explicit backend.
    pub fn with_backend(backend: Box<dyn DurableBackend>) -> Self {
        DurableStore {
            backend,
            scratch: Vec::new(),
            records: 0,
            bytes: 0,
            checkpoints: 0,
            record_counter: Counter::default(),
            byte_counter: Counter::default(),
            checkpoint_counter: Counter::default(),
        }
    }

    /// Creates a file-backed store under `dir` for `host`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the backing files cannot be opened.
    #[cfg(feature = "durable-file")]
    pub fn file_backed(dir: &std::path::Path, host: HostId) -> std::io::Result<Self> {
        Ok(DurableStore::with_backend(Box::new(FileBackend::open(
            dir, host,
        )?)))
    }

    /// Installs the telemetry counters bumped on every append/checkpoint
    /// (`prism.durable.journal.records`, `.journal.bytes`,
    /// `.checkpoint.count`).
    pub fn set_counters(&mut self, records: Counter, bytes: Counter, checkpoints: Counter) {
        self.record_counter = records;
        self.byte_counter = bytes;
        self.checkpoint_counter = checkpoints;
    }

    /// Appends one record to the journal (length-prefixed framing).
    pub fn append(&mut self, record: &JournalRecord) {
        self.scratch.clear();
        record.encode_into(&mut self.scratch);
        let mut frame = Vec::with_capacity(self.scratch.len() + 5);
        put_bytes(&mut frame, &self.scratch);
        self.backend.append(&frame);
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.record_counter.inc();
        self.byte_counter.add(frame.len() as u64);
    }

    /// Writes a checkpoint, truncating the journal.
    pub fn checkpoint(&mut self, checkpoint: &Checkpoint) {
        self.backend.write_checkpoint(&checkpoint.encode());
        self.checkpoints += 1;
        self.checkpoint_counter.inc();
    }

    /// Reads back checkpoint + journal tail, tolerating a torn final record.
    pub fn recover(&self) -> RecoveredState {
        let checkpoint = self
            .backend
            .read_checkpoint()
            .and_then(|bytes| Checkpoint::decode(&bytes).ok());
        let journal = self.backend.read_journal();
        let mut tail = Vec::new();
        let mut pos = 0usize;
        while pos < journal.len() {
            let start = pos;
            let record =
                get_bytes(&journal, &mut pos).and_then(|body| JournalRecord::decode(body, &mut 0));
            match record {
                Ok(rec) => tail.push(rec),
                Err(_) => {
                    // Torn tail: the final record was only partially
                    // appended when the crash hit. Everything before it is
                    // intact; ignore the fragment and report its size.
                    return RecoveredState {
                        checkpoint,
                        tail,
                        torn_bytes: journal.len() - start,
                    };
                }
            }
        }
        RecoveredState {
            checkpoint,
            tail,
            torn_bytes: 0,
        }
    }

    /// Total records appended since the store was created.
    pub fn records_appended(&self) -> u64 {
        self.records
    }

    /// Total journal bytes appended since the store was created.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes
    }

    /// Total checkpoints written since the store was created.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints
    }

    /// The store's current contents — checkpoint bytes then journal bytes —
    /// the byte-identity witness for double-run determinism checks.
    pub fn digest(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let ckpt = self.backend.read_checkpoint();
        match &ckpt {
            None => put_varint(&mut out, 0),
            Some(bytes) => {
                put_varint(&mut out, 1);
                put_bytes(&mut out, bytes);
            }
        }
        let journal = self.backend.read_journal();
        put_bytes(&mut out, &journal);
        out
    }
}

/// The kind of in-flight operation a recovery verdict is about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// A migration move of one component (either side of the transfer).
    MigrationMove,
    /// An event parked for an absent component.
    BufferedEvent,
    /// The monitoring window that was open at the crash.
    MonitorWindow,
}

impl OpKind {
    /// Stable lower-case label for telemetry fields.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::MigrationMove => "migration_move",
            OpKind::BufferedEvent => "buffered_event",
            OpKind::MonitorWindow => "monitor_window",
        }
    }
}

/// One explicit completed/not-completed verdict for an operation that was in
/// flight when the host crashed — the detectable half of detectable
/// recovery.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpVerdict {
    /// What kind of operation this is about.
    pub kind: OpKind,
    /// The operation's subject (component name, or `"window"`).
    pub subject: String,
    /// Whether the operation verifiably completed before the crash.
    pub completed: bool,
}

/// What one crash recovery did and found, reported by the host to the
/// framework layer (which consults the verdicts instead of blindly
/// re-effecting).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// The host that recovered.
    pub host: HostId,
    /// The restart instant.
    pub at: SimTime,
    /// Sequence number of the checkpoint replayed (0 when none existed).
    pub checkpoint_seq: u64,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Bytes of torn journal tail ignored (0 on a clean journal).
    pub torn_bytes: usize,
    /// Self-check: replayed state is byte-identical to the state the host
    /// held at the crash instant (components + directory).
    pub state_equiv: bool,
    /// One verdict per in-flight operation.
    pub verdicts: Vec<OpVerdict>,
}

impl RecoveryReport {
    /// Number of verdicts that report `completed == true`.
    pub fn completed(&self) -> usize {
        self.verdicts.iter().filter(|v| v.completed).count()
    }

    /// Component names whose migration move verifiably completed (landed
    /// here) before or despite the crash.
    pub fn completed_moves(&self) -> impl Iterator<Item = &str> {
        self.verdicts.iter().filter_map(|v| {
            (v.kind == OpKind::MigrationMove && v.completed).then_some(v.subject.as_str())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Delivery {
                component: "a".into(),
                event: vec![1, 2, 3],
            },
            JournalRecord::TimerFired { id: 1007 },
            JournalRecord::TimerArmed {
                id: 1008,
                component: "a".into(),
                token: 2,
            },
            JournalRecord::DirectorySet {
                component: "b".into(),
                host: 3,
            },
            JournalRecord::DirectoryReplaced {
                directory: vec![("a".into(), 0), ("b".into(), 3)],
            },
            JournalRecord::EventBuffered {
                component: "c".into(),
                event: vec![9],
            },
            JournalRecord::BufferDrained {
                component: "c".into(),
            },
            JournalRecord::ChannelSend { peer: 2 },
            JournalRecord::ComponentAttached {
                name: "c".into(),
                type_name: "workload".into(),
                state: vec![4, 5],
            },
            JournalRecord::ComponentDetached { name: "b".into() },
            JournalRecord::MonitorWindow {
                admin: vec![7, 7, 7],
            },
            JournalRecord::DeployerState { blob: vec![8] },
        ]
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            seq: 4,
            at_us: 20_000_000,
            components: vec![("a".into(), "workload".into(), vec![1, 2])],
            directory: vec![("a".into(), 0), ("b".into(), 1)],
            buffered: vec![("c".into(), vec![vec![3], vec![4, 5]])],
            channels: vec![(1, 7, 5), (2, 0, 9)],
            timers: vec![(1001, "a".into(), 0)],
            next_timer: 2,
            admin: vec![6, 6],
            deployer: Some(vec![9, 9, 9]),
        }
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let mut bytes = Vec::new();
            rec.encode_into(&mut bytes);
            let back = JournalRecord::decode(&bytes, &mut 0).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let ckpt = sample_checkpoint();
        assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
        let empty = Checkpoint::default();
        assert_eq!(Checkpoint::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(Checkpoint::decode(b"").is_err());
        assert!(Checkpoint::decode(b"NOPE").is_err());
        let mut bytes = sample_checkpoint().encode();
        bytes.truncate(bytes.len() / 2);
        assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn store_recovers_checkpoint_and_tail() {
        let mut store = DurableStore::in_memory();
        // Records before the checkpoint must vanish with it.
        store.append(&JournalRecord::TimerFired { id: 1000 });
        store.checkpoint(&sample_checkpoint());
        for rec in sample_records() {
            store.append(&rec);
        }
        let rec = store.recover();
        assert_eq!(rec.checkpoint, Some(sample_checkpoint()));
        assert_eq!(rec.tail, sample_records());
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(store.checkpoints_written(), 1);
        assert_eq!(store.records_appended(), 1 + sample_records().len() as u64);
    }

    #[test]
    fn empty_store_recovers_empty() {
        let store = DurableStore::in_memory();
        assert_eq!(store.recover(), RecoveredState::default());
    }

    #[test]
    fn digest_is_deterministic_and_state_sensitive() {
        let build = |extra: bool| {
            let mut store = DurableStore::in_memory();
            store.checkpoint(&sample_checkpoint());
            store.append(&JournalRecord::ChannelSend { peer: 1 });
            if extra {
                store.append(&JournalRecord::TimerFired { id: 1001 });
            }
            store.digest()
        };
        assert_eq!(build(false), build(false));
        assert_ne!(build(false), build(true));
    }

    proptest! {
        /// Any record sequence survives framing, and truncating the framed
        /// journal anywhere inside the final record drops exactly that
        /// record: recovery returns the intact prefix and reports the torn
        /// fragment instead of erroring or inventing data.
        #[test]
        fn torn_tail_is_ignored(
            picks in proptest::collection::vec(0usize..12, 1..20),
            cut in 1usize..64,
        ) {
            let all = sample_records();
            let records: Vec<JournalRecord> =
                picks.iter().map(|&i| all[i].clone()).collect();
            let mut backend = MemBackend::default();
            let mut frames = Vec::new();
            let mut framed = Vec::new();
            for rec in &records {
                let mut body = Vec::new();
                rec.encode_into(&mut body);
                let mut frame = Vec::new();
                put_bytes(&mut frame, &body);
                framed.extend_from_slice(&frame);
                frames.push(frame.len());
            }
            let last = *frames.last().unwrap();
            // Cut strictly inside the final record's frame.
            let cut = cut.min(last - 1).max(1);
            backend.append(&framed[..framed.len() - cut]);
            let store = DurableStore::with_backend(Box::new(backend));
            let rec = store.recover();
            prop_assert_eq!(&rec.tail[..], &records[..records.len() - 1]);
            prop_assert_eq!(rec.torn_bytes, last - cut);
        }

        /// Checkpoints round-trip for arbitrary contents.
        #[test]
        fn checkpoint_roundtrip_prop(
            seq in 0u64..1000,
            at_us in 0u64..u64::MAX / 2,
            names in proptest::collection::vec("[a-z]{1,8}", 0..5),
            state in proptest::collection::vec(any::<u8>(), 0..32),
            next_timer in 0u64..100,
        ) {
            let ckpt = Checkpoint {
                seq,
                at_us,
                components: names
                    .iter()
                    .map(|n| (n.clone(), "workload".to_owned(), state.clone()))
                    .collect(),
                directory: names.iter().map(|n| (n.clone(), 1u32)).collect(),
                buffered: vec![("x".into(), vec![state.clone()])],
                channels: vec![(0, seq, at_us % 97)],
                timers: names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (1000 + i as u64, n.clone(), i as u64))
                    .collect(),
                next_timer,
                admin: state.clone(),
                deployer: if seq % 2 == 0 { None } else { Some(state.clone()) },
            };
            prop_assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
        }

        /// A store recovered from checkpoint-only equals one recovered from
        /// an earlier checkpoint + a tail, once the tail is folded in — at
        /// the store level, folding means the recovered pair (checkpoint,
        /// tail) is exactly what was written, in order, with nothing lost
        /// and nothing reordered.
        #[test]
        fn recover_returns_exactly_what_was_written(
            picks in proptest::collection::vec(0usize..12, 0..24),
            with_ckpt in any::<bool>(),
        ) {
            let all = sample_records();
            let records: Vec<JournalRecord> =
                picks.iter().map(|&i| all[i].clone()).collect();
            let mut store = DurableStore::in_memory();
            if with_ckpt {
                store.checkpoint(&sample_checkpoint());
            }
            for rec in &records {
                store.append(rec);
            }
            let rec = store.recover();
            prop_assert_eq!(
                rec.checkpoint,
                with_ckpt.then(sample_checkpoint)
            );
            prop_assert_eq!(rec.tail, records);
            prop_assert_eq!(rec.torn_bytes, 0);
        }
    }
}
