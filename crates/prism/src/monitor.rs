//! Monitors: the platform-dependent halves of the framework's Monitor
//! component.
//!
//! Prism-MW "associates the `IMonitor` interface with every Brick",
//! allowing "autonomous, active monitoring of a Brick's run-time behavior".
//! Two concrete monitors from the paper are reproduced:
//!
//! * [`EventFrequencyMonitor`] (`EvtFrequencyMonitor`) — taps a connector and
//!   estimates per-component-pair interaction frequencies and event sizes;
//! * [`ReliabilityProbe`] (`NetworkReliabilityMonitor`) — measures per-peer
//!   link reliability with "a common 'pinging' technique" at the host level.
//!
//! Both produce windowed readings that feed the platform-independent
//! [`StabilityGauge`](crate::StabilityGauge); stable readings are packaged
//! into a [`MonitoringSnapshot`] and shipped to the deployer.

use crate::event::Event;
use redep_model::HostId;
use redep_netsim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A probe tapping the traffic of one connector.
pub trait ConnectorMonitor: Any + Send + fmt::Debug {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// Observes one delivery: `src` emitted `event`, `dst` received it.
    fn observe(&mut self, src: &str, dst: &str, event: &Event, now: SimTime);
}

/// Serializes `BTreeMap<(String, String), V>` as a sequence of
/// `(a, b, value)` triples (JSON objects cannot have tuple keys).
pub mod pair_map {
    use serde::de::DeserializeOwned;
    use serde::{Deserialize, Error, Serialize, Value};
    use std::collections::BTreeMap;

    /// Renders the map as an array of `[a, b, value]` triples.
    pub fn serialize<V: Serialize>(map: &BTreeMap<(String, String), V>) -> Value {
        Value::Array(
            map.iter()
                .map(|((a, b), v)| (a, b, v).serialize())
                .collect(),
        )
    }

    /// Rebuilds the tuple-keyed map from an array of `[a, b, value]` triples.
    pub fn deserialize<V: DeserializeOwned>(
        value: &Value,
    ) -> Result<BTreeMap<(String, String), V>, Error> {
        let triples = Vec::<(String, String, V)>::deserialize(value)?;
        Ok(triples.into_iter().map(|(a, b, v)| ((a, b), v)).collect())
    }
}

/// One measurement window of per-pair interaction statistics.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct FrequencyWindow {
    /// Events counted per (source, destination) component-name pair.
    #[serde(with = "pair_map")]
    pub counts: BTreeMap<(String, String), u64>,
    /// Bytes counted per pair.
    #[serde(with = "pair_map")]
    pub bytes: BTreeMap<(String, String), u64>,
    /// Window length in seconds.
    pub window_secs: f64,
}

impl FrequencyWindow {
    /// Events per second for a pair (order-insensitive).
    pub fn frequency(&self, a: &str, b: &str) -> f64 {
        if self.window_secs <= 0.0 {
            return 0.0;
        }
        let c = self.pair_sum(&self.counts, a, b);
        c as f64 / self.window_secs
    }

    /// Mean event size for a pair (order-insensitive); `0.0` when no traffic.
    pub fn mean_event_size(&self, a: &str, b: &str) -> f64 {
        let c = self.pair_sum(&self.counts, a, b);
        if c == 0 {
            return 0.0;
        }
        self.pair_sum(&self.bytes, a, b) as f64 / c as f64
    }

    fn pair_sum(&self, map: &BTreeMap<(String, String), u64>, a: &str, b: &str) -> u64 {
        let ab = map.get(&(a.to_owned(), b.to_owned())).copied().unwrap_or(0);
        let ba = map.get(&(b.to_owned(), a.to_owned())).copied().unwrap_or(0);
        ab + ba
    }

    /// All pairs seen this window, in order.
    pub fn pairs(&self) -> Vec<(String, String)> {
        self.counts.keys().cloned().collect()
    }
}

/// One per-pair counter slot of the frequency monitor's hot path.
#[derive(Debug, Clone)]
struct PairSlot {
    src: String,
    dst: String,
    count: u64,
    bytes: u64,
}

/// Counts events per component pair over fixed windows — the paper's
/// `EvtFrequencyMonitor`.
///
/// Call [`EventFrequencyMonitor::roll_window`] at each interval boundary to
/// close the current window and begin a new one.
///
/// The observation path is allocation-free for repeated pairs: consecutive
/// deliveries usually hit the last-pair memo, and everything else resolves
/// through a two-level hash index (`src → dst → slot`), so cost stays O(1)
/// even on hosts that originate hundreds of distinct interaction pairs.
/// This keeps the paper's "0.1%–10%" overhead claim honest (experiment E5
/// measures it). Window output is drained into sorted maps, so the slot
/// (insertion) order never reaches a journal.
#[derive(Debug)]
pub struct EventFrequencyMonitor {
    window: Duration,
    window_started: SimTime,
    slots: Vec<PairSlot>,
    /// `src → dst → index into slots`; lookups borrow `&str`, no allocation.
    index: HashMap<String, HashMap<String, usize>>,
    last_hit: usize,
    completed: Vec<FrequencyWindow>,
}

impl EventFrequencyMonitor {
    /// Creates a monitor with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        EventFrequencyMonitor {
            window,
            window_started: SimTime::ZERO,
            slots: Vec::new(),
            index: HashMap::new(),
            last_hit: 0,
            completed: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Closes the current window (stamping its true length from `now`) and
    /// starts the next one. Returns the closed window.
    pub fn roll_window(&mut self, now: SimTime) -> FrequencyWindow {
        let mut closed = FrequencyWindow {
            window_secs: now.since(self.window_started).as_secs_f64(),
            ..FrequencyWindow::default()
        };
        for slot in self.slots.drain(..) {
            closed
                .counts
                .insert((slot.src.clone(), slot.dst.clone()), slot.count);
            closed.bytes.insert((slot.src, slot.dst), slot.bytes);
        }
        self.index.clear();
        self.last_hit = 0;
        self.window_started = now;
        self.completed.push(closed.clone());
        closed
    }

    /// All completed windows, oldest first.
    pub fn completed(&self) -> &[FrequencyWindow] {
        &self.completed
    }

    /// The most recently completed window, if any.
    pub fn latest(&self) -> Option<&FrequencyWindow> {
        self.completed.last()
    }
}

impl ConnectorMonitor for EventFrequencyMonitor {
    fn name(&self) -> &str {
        "event frequency"
    }

    fn observe(&mut self, src: &str, dst: &str, event: &Event, _now: SimTime) {
        let size = event.size();
        // Fast path: same pair as last time (the common case on a bus).
        if let Some(slot) = self.slots.get_mut(self.last_hit) {
            if slot.src == src && slot.dst == dst {
                slot.count += 1;
                slot.bytes += size;
                return;
            }
        }
        if let Some(&i) = self.index.get(src).and_then(|by_dst| by_dst.get(dst)) {
            self.last_hit = i;
            self.slots[i].count += 1;
            self.slots[i].bytes += size;
            return;
        }
        self.last_hit = self.slots.len();
        self.index
            .entry(src.to_owned())
            .or_default()
            .insert(dst.to_owned(), self.last_hit);
        self.slots.push(PairSlot {
            src: src.to_owned(),
            dst: dst.to_owned(),
            count: 1,
            bytes: size,
        });
    }
}

/// Per-peer reliability estimation by pinging — the paper's
/// `NetworkReliabilityMonitor`.
///
/// The host sends `pings_per_window` raw (unacknowledged) pings to each peer
/// per window; the observed pong ratio estimates the link's two-way delivery
/// probability, whose square root estimates one-way reliability.
#[derive(Clone, PartialEq, Debug)]
pub struct ReliabilityProbe {
    sent: BTreeMap<HostId, u64>,
    received: BTreeMap<HostId, u64>,
}

impl Default for ReliabilityProbe {
    fn default() -> Self {
        ReliabilityProbe::new()
    }
}

impl ReliabilityProbe {
    /// Creates an idle probe.
    pub fn new() -> Self {
        ReliabilityProbe {
            sent: BTreeMap::new(),
            received: BTreeMap::new(),
        }
    }

    /// Records that a ping was sent to `peer`.
    pub fn record_ping(&mut self, peer: HostId) {
        *self.sent.entry(peer).or_insert(0) += 1;
    }

    /// Records that a pong came back from `peer`.
    pub fn record_pong(&mut self, peer: HostId) {
        *self.received.entry(peer).or_insert(0) += 1;
    }

    /// Closes the window: returns per-peer one-way reliability estimates
    /// (√ of the round-trip ratio) and resets the counters.
    pub fn roll_window(&mut self) -> BTreeMap<HostId, f64> {
        let mut estimates = BTreeMap::new();
        for (peer, sent) in std::mem::take(&mut self.sent) {
            if sent == 0 {
                continue;
            }
            let received = self.received.get(&peer).copied().unwrap_or(0);
            let roundtrip = received as f64 / sent as f64;
            estimates.insert(peer, roundtrip.sqrt());
        }
        self.received.clear();
        estimates
    }
}

/// A host's stable monitoring results, shipped (serialized inside a Prism
/// event) from each `AdminComponent` to the `DeployerComponent`.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct MonitoringSnapshot {
    /// The reporting host.
    pub host: HostId,
    /// Components currently deployed on the host (instance → type name).
    pub components: BTreeMap<String, String>,
    /// Estimated interaction frequency per component pair (events/second).
    #[serde(with = "pair_map")]
    pub frequencies: BTreeMap<(String, String), f64>,
    /// Estimated mean event size per component pair (bytes).
    #[serde(with = "pair_map")]
    pub event_sizes: BTreeMap<(String, String), f64>,
    /// Estimated link reliability per peer host.
    pub reliabilities: BTreeMap<HostId, f64>,
    /// When the snapshot was taken (seconds of simulated time).
    pub taken_at_secs: f64,
}

impl MonitoringSnapshot {
    /// Serializes the snapshot for shipping inside an event payload.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] if serialization fails.
    pub fn encode(&self) -> Result<Vec<u8>, crate::PrismError> {
        serde_json::to_vec(self).map_err(|e| crate::PrismError::Codec(e.to_string()))
    }

    /// Parses a snapshot from an event payload.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PrismError::Codec`] for malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::PrismError> {
        serde_json::from_slice(bytes).map_err(|e| crate::PrismError::Codec(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn frequency_monitor_counts_per_pair() {
        let mut m = EventFrequencyMonitor::new(Duration::from_secs_f64(10.0));
        let e = Event::notification("n").with_size(100);
        for _ in 0..20 {
            m.observe("a", "b", &e, t(0.0));
        }
        m.observe("b", "a", &e, t(0.0));
        let w = m.roll_window(t(10.0));
        // 21 events over 10 s, order-insensitive.
        assert!((w.frequency("a", "b") - 2.1).abs() < 1e-9);
        assert!((w.frequency("b", "a") - 2.1).abs() < 1e-9);
        assert_eq!(w.mean_event_size("a", "b"), 100.0);
    }

    #[test]
    fn rolling_resets_the_window() {
        let mut m = EventFrequencyMonitor::new(Duration::from_secs_f64(1.0));
        let e = Event::notification("n");
        m.observe("a", "b", &e, t(0.0));
        m.roll_window(t(1.0));
        let w2 = m.roll_window(t(2.0));
        assert_eq!(w2.frequency("a", "b"), 0.0);
        assert_eq!(m.completed().len(), 2);
    }

    #[test]
    fn unseen_pair_has_zero_frequency() {
        let mut m = EventFrequencyMonitor::new(Duration::from_secs_f64(1.0));
        let w = m.roll_window(t(1.0));
        assert_eq!(w.frequency("x", "y"), 0.0);
        assert_eq!(w.mean_event_size("x", "y"), 0.0);
    }

    #[test]
    fn reliability_probe_estimates_sqrt_of_roundtrip() {
        let mut p = ReliabilityProbe::new();
        let peer = HostId::new(1);
        for _ in 0..100 {
            p.record_ping(peer);
        }
        for _ in 0..81 {
            p.record_pong(peer);
        }
        let est = p.roll_window();
        assert!((est[&peer] - 0.9).abs() < 1e-9);
        // Counters reset after rolling.
        assert!(p.roll_window().is_empty());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = MonitoringSnapshot {
            host: HostId::new(2),
            taken_at_secs: 12.5,
            ..MonitoringSnapshot::default()
        };
        s.components.insert("gui".into(), "display".into());
        s.frequencies.insert(("gui".into(), "db".into()), 4.5);
        s.reliabilities.insert(HostId::new(1), 0.8);
        let bytes = s.encode().unwrap();
        assert_eq!(MonitoringSnapshot::decode(&bytes).unwrap(), s);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = EventFrequencyMonitor::new(Duration::ZERO);
    }
}
