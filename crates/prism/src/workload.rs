//! A migratable workload component that realizes a model's logical links.
//!
//! The paper's example systems are sets of components with known interaction
//! frequencies and event sizes. [`WorkloadComponent`] reproduces that: it is
//! configured with a list of [`InteractionSpec`]s and emits one event per
//! period to each peer — wherever that peer currently lives — while counting
//! what it receives. Its configuration and counters are part of its
//! serialized state, so it keeps working after a migration.

use crate::brick::{ComponentBehavior, ComponentCtx};
use crate::event::Event;
use crate::symbol::Symbol;
use redep_netsim::Duration;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The interned form of [`EV_APP`], resolved once so the per-event hot path
/// never touches the interner lock.
fn ev_app_symbol() -> Symbol {
    static SYM: OnceLock<Symbol> = OnceLock::new();
    *SYM.get_or_init(|| Symbol::intern(EV_APP))
}

/// The factory type name of [`WorkloadComponent`].
pub const WORKLOAD_TYPE: &str = "redep.workload";

/// Event name emitted by workload components.
pub const EV_APP: &str = "app.interaction";

/// One outgoing interaction pattern.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct InteractionSpec {
    /// The peer component's instance name.
    pub peer: String,
    /// Events per second sent to the peer.
    pub frequency: f64,
    /// Bytes accounted per event.
    pub event_size: u64,
}

#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
struct WorkloadState {
    interactions: Vec<InteractionSpec>,
    sent: u64,
    received: u64,
}

/// A component that generates the configured interactions and counts
/// arrivals. Fully migratable: register [`WorkloadComponent::build`] with
/// the [`ComponentFactory`](crate::ComponentFactory) under
/// [`WORKLOAD_TYPE`].
///
/// # Example
///
/// ```
/// use redep_prism::{WorkloadComponent, ComponentBehavior, ComponentFactory};
/// use redep_prism::workload::{InteractionSpec, WORKLOAD_TYPE};
///
/// let w = WorkloadComponent::new(vec![InteractionSpec {
///     peer: "tracker".into(),
///     frequency: 4.0,
///     event_size: 128,
/// }]);
/// let mut factory = ComponentFactory::new();
/// factory.register(WORKLOAD_TYPE, WorkloadComponent::build);
/// // The snapshot/build pair is what lets the component migrate.
/// let clone = factory.build(WORKLOAD_TYPE, &w.snapshot())?;
/// assert_eq!(clone.snapshot(), w.snapshot());
/// # Ok::<(), redep_prism::PrismError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct WorkloadComponent {
    state: WorkloadState,
    /// Interned peer names, index-aligned with `state.interactions` —
    /// derived (not serialized) so the per-timer send path is symbol-only.
    peer_syms: Vec<Symbol>,
}

// Equality is over the serialized state only; `peer_syms` is derived.
impl PartialEq for WorkloadComponent {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state
    }
}

impl WorkloadComponent {
    /// Creates a workload with the given interaction patterns.
    ///
    /// # Panics
    ///
    /// Panics if any frequency is negative or any event size is zero.
    pub fn new(interactions: Vec<InteractionSpec>) -> Self {
        for spec in &interactions {
            assert!(
                spec.frequency >= 0.0,
                "frequency must be non-negative for peer {}",
                spec.peer
            );
            assert!(spec.event_size > 0, "event size must be positive");
        }
        let peer_syms = interactions
            .iter()
            .map(|s| Symbol::intern(&s.peer))
            .collect();
        WorkloadComponent {
            state: WorkloadState {
                interactions,
                sent: 0,
                received: 0,
            },
            peer_syms,
        }
    }

    /// Factory constructor: rebuilds the component from its snapshot.
    /// Register under [`WORKLOAD_TYPE`].
    pub fn build(state: &[u8]) -> Box<dyn ComponentBehavior> {
        let state: WorkloadState = serde_json::from_slice(state).unwrap_or_default();
        let peer_syms = state
            .interactions
            .iter()
            .map(|s| Symbol::intern(&s.peer))
            .collect();
        Box::new(WorkloadComponent { state, peer_syms })
    }

    /// Events sent so far.
    pub fn sent(&self) -> u64 {
        self.state.sent
    }

    /// Events received so far.
    pub fn received(&self) -> u64 {
        self.state.received
    }

    /// The configured interaction patterns.
    pub fn interactions(&self) -> &[InteractionSpec] {
        &self.state.interactions
    }

    fn arm_timers(&self, ctx: &mut ComponentCtx<'_>) {
        for (i, spec) in self.state.interactions.iter().enumerate() {
            if spec.frequency > 0.0 {
                let period = Duration::from_secs_f64(1.0 / spec.frequency);
                ctx.set_timer(period, i as u64);
            }
        }
    }
}

impl ComponentBehavior for WorkloadComponent {
    fn type_name(&self) -> &str {
        WORKLOAD_TYPE
    }

    fn on_attach(&mut self, ctx: &mut ComponentCtx<'_>) {
        self.arm_timers(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ComponentCtx<'_>, token: u64) {
        let Some(spec) = self.state.interactions.get(token as usize) else {
            return;
        };
        let event = Event::notification(ev_app_symbol()).with_size(spec.event_size);
        ctx.send_to(self.peer_syms[token as usize], event);
        self.state.sent += 1;
        // Re-arm for periodic emission.
        let period = Duration::from_secs_f64(1.0 / spec.frequency);
        ctx.set_timer(period, token);
    }

    fn handle(&mut self, _ctx: &mut ComponentCtx<'_>, event: &Event) {
        if event.name_symbol() == ev_app_symbol() {
            self.state.received += 1;
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(&self.state).expect("workload state serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::HostId;
    use redep_netsim::SimTime;

    fn spec(peer: &str, freq: f64) -> InteractionSpec {
        InteractionSpec {
            peer: peer.into(),
            frequency: freq,
            event_size: 64,
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_counters() {
        let mut w = WorkloadComponent::new(vec![spec("x", 2.0)]);
        w.state.sent = 5;
        w.state.received = 3;
        let rebuilt = WorkloadComponent::build(&w.snapshot());
        assert_eq!(rebuilt.snapshot(), w.snapshot());
    }

    #[test]
    fn attach_arms_one_timer_per_active_interaction() {
        let w = WorkloadComponent::new(vec![spec("x", 2.0), spec("y", 0.0), spec("z", 1.0)]);
        let mut actions = Vec::new();
        let mut ctx =
            crate::brick::ComponentCtx::new("w", HostId::new(0), SimTime::ZERO, &mut actions);
        let mut w2 = w;
        w2.on_attach(&mut ctx);
        // Only the two nonzero-frequency interactions arm timers.
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn timer_emits_to_peer_and_rearms() {
        let mut w = WorkloadComponent::new(vec![spec("peer", 4.0)]);
        let mut actions = Vec::new();
        let mut ctx =
            crate::brick::ComponentCtx::new("w", HostId::new(0), SimTime::ZERO, &mut actions);
        w.on_timer(&mut ctx, 0);
        assert_eq!(w.sent(), 1);
        assert_eq!(actions.len(), 2); // the send plus the re-arm
    }

    #[test]
    fn receiving_app_events_increments_counter() {
        let mut w = WorkloadComponent::new(vec![]);
        let mut actions = Vec::new();
        let mut ctx =
            crate::brick::ComponentCtx::new("w", HostId::new(0), SimTime::ZERO, &mut actions);
        w.handle(&mut ctx, &Event::notification(EV_APP));
        w.handle(&mut ctx, &Event::notification("other"));
        assert_eq!(w.received(), 1);
    }

    #[test]
    #[should_panic(expected = "event size must be positive")]
    fn zero_event_size_panics() {
        let _ = WorkloadComponent::new(vec![InteractionSpec {
            peer: "x".into(),
            frequency: 1.0,
            event_size: 0,
        }]);
    }
}
