//! Interned name symbols — the fast-path identity of events and components.
//!
//! Every event, component, and connector name in a running system is drawn
//! from a small, essentially static vocabulary (protocol event names,
//! generated component names). Carrying them as owned `String`s made every
//! event construction, clone, and comparison allocate and memcmp. A
//! [`Symbol`] is the interned form: a `u32` id plus a `&'static str` borrowed
//! from the process-wide interner, so
//!
//! * construction from an already-interned name is a hash lookup,
//! * copies are free (`Symbol` is `Copy`),
//! * equality is one integer compare,
//! * reading the name back never takes a lock.
//!
//! The interner is process-global rather than per-architecture so that the
//! binary wire codec can ship symbol ids between simulated hosts of one
//! process (see [`crate::codec`]). Interned strings are leaked deliberately:
//! the vocabulary of a simulation is bounded, and a leaked name is exactly
//! what makes `Symbol::as_str` lock-free.
//!
//! Determinism note: symbol *ids* depend on interning order and may differ
//! between runs. Nothing observable derives from ids — journals, reports,
//! and orderings all use the interned *string* ([`Symbol`]'s `Ord` compares
//! names, not ids) — so double-run byte-identical journals are preserved.

use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned name: a `Copy` handle to a process-global string.
///
/// # Example
///
/// ```
/// use redep_prism::Symbol;
/// let a = Symbol::intern("app.interaction");
/// let b = Symbol::intern("app.interaction");
/// assert_eq!(a, b); // same id, one integer compare
/// assert_eq!(a.as_str(), "app.interaction");
/// ```
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    name: &'static str,
}

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns a name, returning its symbol. Idempotent: the same string
    /// always maps to the same symbol within one process.
    pub fn intern(name: &str) -> Symbol {
        let mut table = interner().lock().expect("interner poisoned");
        if let Some(&id) = table.by_name.get(name) {
            return Symbol {
                id,
                name: table.names[id as usize],
            };
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(table.names.len()).expect("symbol table overflow");
        table.names.push(leaked);
        table.by_name.insert(leaked, id);
        Symbol { id, name: leaked }
    }

    /// Resolves a raw interner id (the wire representation of the binary
    /// codec). Returns `None` for ids this process never interned.
    pub fn from_id(id: u32) -> Option<Symbol> {
        let table = interner().lock().expect("interner poisoned");
        let name = *table.names.get(id as usize)?;
        Some(Symbol { id, name })
    }

    /// The interned string. Lock-free: the name is borrowed from the
    /// interner's leaked storage.
    pub fn as_str(self) -> &'static str {
        self.name
    }

    /// The raw interner id (process-local; see the module docs on
    /// determinism).
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

// Ordering compares the *names*, not the ids: containers keyed by `Symbol`
// iterate in the same deterministic name order the previous
// `BTreeMap<String, _>` representation had, independent of interning order.
impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.name.cmp(other.name)
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.name)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.name
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.name == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.name == *other
    }
}

// Symbols serialize as their string on the JSON debug codec, so `codec=json`
// frames stay human-readable and never leak process-local ids.
impl Serialize for Symbol {
    fn serialize(&self) -> Value {
        Value::String(self.name.to_owned())
    }
}

impl Deserialize for Symbol {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::String(s) => Ok(Symbol::intern(s)),
            other => Err(serde::Error::expected("string symbol", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("alpha-test-symbol");
        let b = Symbol::intern("alpha-test-symbol");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "alpha-test-symbol");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Symbol::intern("sym-one");
        let b = Symbol::intern("sym-two");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn from_id_resolves_interned_only() {
        let a = Symbol::intern("resolvable");
        assert_eq!(Symbol::from_id(a.id()), Some(a));
        assert_eq!(Symbol::from_id(u32::MAX), None);
    }

    #[test]
    fn ordering_follows_names_not_ids() {
        // Intern in reverse lexicographic order; Ord must still sort by name.
        let z = Symbol::intern("zz-order-test");
        let a = Symbol::intern("aa-order-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, [a, z]);
    }

    #[test]
    fn serde_roundtrip_via_string() {
        let s = Symbol::intern("serde-sym");
        let v = s.serialize();
        assert_eq!(v, Value::String("serde-sym".to_owned()));
        assert_eq!(Symbol::deserialize(&v).unwrap(), s);
        assert!(Symbol::deserialize(&Value::Bool(true)).is_err());
    }

    #[test]
    fn display_and_eq_str() {
        let s = Symbol::intern("shown");
        assert_eq!(s.to_string(), "shown");
        assert_eq!(s, "shown");
        assert_eq!(s, *"shown");
    }
}
