//! Error type for the middleware.

use crate::brick::BrickId;
use std::error::Error;
use std::fmt;

/// An error produced by the Prism middleware.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PrismError {
    /// The referenced brick does not exist in the architecture.
    UnknownBrick(BrickId),
    /// No component with this instance name exists in the architecture.
    UnknownComponent(String),
    /// A component with this instance name already exists.
    DuplicateComponent(String),
    /// The component type is not registered with the factory, so it cannot
    /// be reconstituted after migration.
    UnregisteredType(String),
    /// (De)serialization failed.
    Codec(String),
    /// A weld refers to a brick of the wrong kind (e.g. welding two
    /// components directly without a connector).
    InvalidWeld(BrickId, BrickId),
}

impl fmt::Display for PrismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrismError::UnknownBrick(id) => write!(f, "unknown brick {id}"),
            PrismError::UnknownComponent(name) => write!(f, "unknown component '{name}'"),
            PrismError::DuplicateComponent(name) => {
                write!(f, "component '{name}' already exists")
            }
            PrismError::UnregisteredType(ty) => {
                write!(
                    f,
                    "component type '{ty}' is not registered with the factory"
                )
            }
            PrismError::Codec(msg) => write!(f, "encoding failed: {msg}"),
            PrismError::InvalidWeld(a, b) => {
                write!(f, "cannot weld {a} to {b}: one end must be a connector")
            }
        }
    }
}

impl Error for PrismError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<PrismError>();
        assert!(PrismError::UnknownComponent("gps".into())
            .to_string()
            .contains("gps"));
    }
}
