//! Property-based tests on the middleware's codec, channel, and stability
//! invariants.

use proptest::prelude::*;
use redep_prism::monitor::pair_map;
use redep_prism::{Event, StabilityGauge, TraceCtx, WireCodec};
use std::collections::BTreeMap;

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        "[a-z.]{1,20}",
        proptest::collection::btree_map("[a-z]{1,8}", -1e9f64..1e9, 0..8),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::option::of(0u64..1_000_000),
    )
        .prop_map(|(name, params, payload, size)| {
            let mut e = Event::notification(name).with_payload(payload);
            for (k, v) in params {
                e = e.with_param(k, v);
            }
            if let Some(s) = size {
                e = e.with_size(s);
            }
            e
        })
}

fn trace_strategy() -> impl Strategy<Value = TraceCtx> {
    (
        1u64..u64::MAX,
        1u64..u64::MAX,
        proptest::option::of(1u64..u64::MAX),
    )
        .prop_map(|(trace_id, span_id, parent_id)| TraceCtx {
            trace_id,
            span_id,
            parent_id,
        })
}

/// Advances `pos` past one LEB128 varint in the binary event layout.
fn skip_varint(bytes: &[u8], pos: &mut usize) {
    while bytes[*pos] & 0x80 != 0 {
        *pos += 1;
    }
    *pos += 1;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn events_roundtrip_through_the_wire_codec(event in event_strategy()) {
        let bytes = event.encode().unwrap();
        let back = Event::decode(&bytes).unwrap();
        prop_assert_eq!(back, event);
    }

    #[test]
    fn both_codecs_roundtrip_and_binary_never_exceeds_json(event in event_strategy()) {
        // Cross-codec equivalence: the same event survives either wire
        // format, and `decode` tells them apart by the leading magic byte.
        let binary = event.encode_with(WireCodec::Binary).unwrap();
        let json = event.encode_with(WireCodec::Json).unwrap();
        prop_assert_eq!(Event::decode(&binary).unwrap(), event.clone());
        prop_assert_eq!(Event::decode(&json).unwrap(), event);
        // The size claim the binary codec exists for.
        prop_assert!(
            binary.len() <= json.len(),
            "binary frame ({}) larger than JSON ({})", binary.len(), json.len()
        );
    }

    #[test]
    fn traced_events_roundtrip_through_both_codecs(
        event in event_strategy(),
        trace in proptest::option::of(trace_strategy()),
    ) {
        let event = match trace {
            Some(ctx) => event.with_trace(ctx),
            None => event,
        };
        let binary = event.encode_with(WireCodec::Binary).unwrap();
        let json = event.encode_with(WireCodec::Json).unwrap();
        prop_assert_eq!(Event::decode(&binary).unwrap(), event.clone());
        prop_assert_eq!(Event::decode(&json).unwrap(), event);
    }

    #[test]
    fn traceless_events_encode_byte_identical_to_pre_trace_wire_format(
        event in event_strategy(),
        trace in trace_strategy(),
    ) {
        // The trace context is a purely additive wire extension: an event
        // without one must produce the exact byte sequence the pre-trace
        // codec produced. Pin that by encoding the same event with and
        // without a context — stripping the trace varints and flag bits
        // from the traced frame must reproduce the trace-less frame, i.e.
        // the trace adds bytes in exactly one documented place and leaves
        // no other residue.
        const FLAG_SOURCE: u8 = 0b01;
        const FLAG_SIZE: u8 = 0b10;
        const FLAG_TRACE_BITS: u8 = 0b1100;

        let plain = event.encode_with(WireCodec::Binary).unwrap();
        prop_assert_eq!(plain[2] & FLAG_TRACE_BITS, 0, "trace-less event set a trace flag");

        let traced = event.clone().with_trace(trace).encode_with(WireCodec::Binary).unwrap();
        // Walk the header: magic, kind, flags, then the name varint and the
        // optional source/size varints — the trace fields sit right after.
        let mut pos = 3;
        skip_varint(&traced, &mut pos); // name
        if traced[2] & FLAG_SOURCE != 0 {
            skip_varint(&traced, &mut pos);
        }
        if traced[2] & FLAG_SIZE != 0 {
            skip_varint(&traced, &mut pos);
        }
        let trace_start = pos;
        skip_varint(&traced, &mut pos); // trace_id
        skip_varint(&traced, &mut pos); // span_id
        if trace.parent_id.is_some() {
            skip_varint(&traced, &mut pos);
        }
        let mut stripped = traced.clone();
        stripped.drain(trace_start..pos);
        stripped[2] &= !FLAG_TRACE_BITS;
        prop_assert_eq!(stripped, plain);
    }

    #[test]
    fn event_size_is_positive_and_respects_override(event in event_strategy()) {
        prop_assert!(event.size() > 0 || event.size() == 0 && event.name().is_empty());
    }

    #[test]
    fn stability_gauge_accepts_constant_streams(
        value in -1e6f64..1e6,
        required in 1usize..6,
        extra in 0usize..5,
    ) {
        let mut g = StabilityGauge::new(0.01, required);
        for _ in 0..(required + 1 + extra) {
            g.push(value);
        }
        prop_assert!(g.is_stable());
    }

    #[test]
    fn stability_gauge_rejects_jumps_beyond_epsilon(
        base in 0.0f64..1.0,
        jump in 0.5f64..10.0,
        required in 1usize..5,
    ) {
        let mut g = StabilityGauge::new(0.1, required);
        for i in 0..(required + 1) {
            // Alternate around base with a jump much larger than ε.
            g.push(base + if i % 2 == 0 { 0.0 } else { jump });
        }
        prop_assert!(!g.is_stable());
    }

    #[test]
    fn pair_map_round_trips_any_pair_keyed_map(
        entries in proptest::collection::btree_map(
            ("[a-z0-9._-]{0,12}", "[a-z0-9._-]{0,12}"),
            -1e12f64..1e12,
            0..16,
        ),
    ) {
        let map: BTreeMap<(String, String), f64> = entries;
        let value = pair_map::serialize(&map);
        let text = serde_json::to_string(&value).unwrap();
        let back: BTreeMap<(String, String), f64> =
            pair_map::deserialize(&serde_json::from_str(&text).unwrap()).unwrap();
        prop_assert_eq!(back, map);
    }

    #[test]
    fn relative_gauge_scales_with_magnitude(scale in 1.0f64..1e6) {
        // ±1% wiggle at any magnitude is stable for a 5% relative gauge…
        let mut g = StabilityGauge::new_relative(0.05, 2);
        for i in 0..4 {
            g.push(scale * (1.0 + 0.01 * (i % 2) as f64));
        }
        prop_assert!(g.is_stable());
        // …and ±20% wiggle never is.
        let mut g = StabilityGauge::new_relative(0.05, 2);
        for i in 0..4 {
            g.push(scale * (1.0 + 0.2 * (i % 2) as f64));
        }
        prop_assert!(!g.is_stable());
    }
}
