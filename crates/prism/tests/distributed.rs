//! End-to-end tests of the distributed middleware: Prism hosts running on
//! the network simulator, monitoring flowing to the deployer, and live
//! component migration (the paper's Figure 8 setup).

use redep_model::HostId;
use redep_netsim::{Duration, LinkSpec, SimTime, Simulator};
use redep_prism::workload::{InteractionSpec, EV_APP, WORKLOAD_TYPE};
use redep_prism::{host::HostConfig, ComponentFactory, Event, PrismHost, WorkloadComponent};
use std::collections::{BTreeMap, BTreeSet};

fn h(n: u32) -> HostId {
    HostId::new(n)
}

fn factory() -> ComponentFactory {
    let mut f = ComponentFactory::new();
    f.register(WORKLOAD_TYPE, WorkloadComponent::build);
    f
}

fn config(deployer: HostId, neighbors: &[HostId]) -> HostConfig {
    HostConfig {
        deployer_host: deployer,
        neighbors: neighbors.iter().copied().collect::<BTreeSet<_>>(),
        monitor_window: Duration::from_secs_f64(2.0),
        epsilon: 0.5,
        stable_windows: 2,
        ..HostConfig::default()
    }
}

/// Three fully meshed hosts; "a" on h0 talks to "b" on h1 at 5 events/s.
fn three_host_system(reliability: f64) -> Simulator {
    let hosts = [h(0), h(1), h(2)];
    let mut sim = Simulator::new(11);
    let directory: BTreeMap<String, HostId> =
        [("a".to_owned(), h(0)), ("b".to_owned(), h(1))].into();

    for &me in &hosts {
        let neighbors: Vec<HostId> = hosts.iter().copied().filter(|x| *x != me).collect();
        let mut host = PrismHost::new(me, factory(), config(h(0), &neighbors));
        if me == h(0) {
            host.enable_deployer();
            host.add_app_component(
                "a",
                WorkloadComponent::new(vec![InteractionSpec {
                    peer: "b".into(),
                    frequency: 5.0,
                    event_size: 100,
                }]),
            )
            .unwrap();
        }
        if me == h(1) {
            host.add_app_component("b", WorkloadComponent::new(vec![]))
                .unwrap();
        }
        host.set_initial_directory(directory.clone());
        sim.add_host(me, host);
    }
    for i in 0..hosts.len() {
        for j in (i + 1)..hosts.len() {
            sim.set_link(
                hosts[i],
                hosts[j],
                LinkSpec {
                    reliability,
                    bandwidth: 1e6,
                    delay: 0.002,
                },
            );
        }
    }
    sim
}

#[test]
fn workload_flows_between_hosts() {
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let sender = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let receiver = sim.node_ref::<PrismHost>(h(1)).unwrap();
    let a = sender
        .architecture()
        .component_ref::<WorkloadComponent>("a")
        .unwrap();
    let b = receiver
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap();
    // ~50 events in 10 s at 5/s over a perfect link; the last event may
    // still be in flight (2 ms propagation) when the clock stops.
    assert!(a.sent() >= 45, "sent only {}", a.sent());
    assert!(
        b.received() >= a.sent() - 1 && b.received() <= a.sent(),
        "sent {} received {}",
        a.sent(),
        b.received()
    );
}

#[test]
fn monitoring_reports_reach_the_deployer() {
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(30.0));
    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let deployer = master.deployer().unwrap();
    // Every host reported at least once (stability achieved).
    assert_eq!(
        deployer.snapshots().len(),
        3,
        "{:?}",
        deployer.snapshots().keys()
    );
    // The sender's snapshot carries a frequency estimate near 5 events/s.
    let snap0 = &deployer.snapshots()[&h(0)];
    let freq: f64 = snap0
        .frequencies
        .get(&("a".to_owned(), "b".to_owned()))
        .copied()
        .unwrap_or(0.0);
    assert!((freq - 5.0).abs() < 1.0, "estimated frequency {freq}");
    // Components inventoried correctly.
    assert!(snap0.components.contains_key("a"));
    assert_eq!(deployer.snapshots()[&h(1)].components.len(), 1);
}

#[test]
fn reliability_probes_recover_link_quality() {
    let mut sim = three_host_system(0.6);
    sim.run_until(SimTime::from_secs_f64(40.0));
    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let estimates = master.admin().reliability_estimates();
    let est = estimates.get(&h(1)).copied().unwrap_or(0.0);
    assert!(
        (est - 0.6).abs() < 0.12,
        "estimated reliability {est}, ground truth 0.6"
    );
}

#[test]
fn redeployment_migrates_component_and_traffic_follows() {
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(10.0));

    // Move "b" from h1 to h2.
    let master = sim.node_mut::<PrismHost>(h(0)).unwrap();
    master
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(15.0));

    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let status = master.deployer().unwrap().status();
    assert!(
        status.is_complete(),
        "still in flight: {:?}",
        status.in_flight
    );
    assert_eq!(status.requested, 1);
    assert_eq!(status.confirmed, 1);

    assert!(!sim
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .architecture()
        .contains_component("b"));
    let host2 = sim.node_ref::<PrismHost>(h(2)).unwrap();
    assert!(host2.architecture().contains_component("b"));

    // Traffic keeps flowing to the new location.
    let before = host2
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    sim.run_until(SimTime::from_secs_f64(25.0));
    let after = sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(
        after >= before + 40,
        "traffic did not follow the migration: {before} -> {after}"
    );
}

#[test]
fn migration_preserves_component_state() {
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let received_before = sim
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(received_before > 0);

    let master = sim.node_mut::<PrismHost>(h(0)).unwrap();
    master
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(15.0));

    // The migrant kept its counters (serialized state travelled with it).
    let received_after = sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(received_after >= received_before);
}

#[test]
fn migration_survives_lossy_links() {
    // 40% loss on every link: control traffic must still complete the move
    // thanks to the reliable channels.
    let mut sim = three_host_system(0.6);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let master = sim.node_mut::<PrismHost>(h(0)).unwrap();
    master
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(40.0));
    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    assert!(master.deployer().unwrap().status().is_complete());
    assert!(sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .architecture()
        .contains_component("b"));
    // Retransmissions actually happened (the channel earned its keep).
    let retrans: u64 = [h(0), h(1), h(2)]
        .iter()
        .map(|&x| {
            sim.node_ref::<PrismHost>(x)
                .unwrap()
                .services()
                .stats()
                .retransmissions
        })
        .sum();
    assert!(retrans > 0);
}

#[test]
fn migration_survives_a_destination_crash() {
    // The destination host crashes right after the move is ordered; the
    // reliable channels retransmit until it comes back, and the migration
    // then completes.
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.set_host_up(h(2), false);
    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(15.0));
    assert!(
        !sim.node_ref::<PrismHost>(h(0))
            .unwrap()
            .deployer()
            .unwrap()
            .status()
            .is_complete(),
        "migration completed into a crashed host?!"
    );
    // "b" must not have been destroyed in the meantime: either it still
    // sits at h1 or its transfer is parked in a reliable channel.
    sim.set_host_up(h(2), true);
    sim.run_until(SimTime::from_secs_f64(40.0));
    assert!(sim
        .node_ref::<PrismHost>(h(0))
        .unwrap()
        .deployer()
        .unwrap()
        .status()
        .is_complete());
    let host2 = sim.node_ref::<PrismHost>(h(2)).unwrap();
    assert!(host2.architecture().contains_component("b"));
    // The migrant still works: traffic resumes into it.
    let before = host2
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    sim.run_until(SimTime::from_secs_f64(50.0));
    let after = sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(after > before);
}

#[test]
fn mediated_transfer_without_direct_link() {
    // h1 and h2 are not connected to each other, only to the master h0.
    // Moving "b" from h1 to h2 must be mediated through the deployer.
    let hosts = [h(0), h(1), h(2)];
    let mut sim = Simulator::new(23);
    let directory: BTreeMap<String, HostId> =
        [("a".to_owned(), h(0)), ("b".to_owned(), h(1))].into();
    for &me in &hosts {
        let neighbors: Vec<HostId> = match me.raw() {
            0 => vec![h(1), h(2)],
            _ => vec![h(0)],
        };
        let mut host = PrismHost::new(me, factory(), config(h(0), &neighbors));
        if me == h(0) {
            host.enable_deployer();
            host.add_app_component(
                "a",
                WorkloadComponent::new(vec![InteractionSpec {
                    peer: "b".into(),
                    frequency: 2.0,
                    event_size: 50,
                }]),
            )
            .unwrap();
        }
        if me == h(1) {
            host.add_app_component("b", WorkloadComponent::new(vec![]))
                .unwrap();
        }
        host.set_initial_directory(directory.clone());
        sim.add_host(me, host);
    }
    sim.set_link(h(0), h(1), LinkSpec::default());
    sim.set_link(h(0), h(2), LinkSpec::default());
    // Note: no h1–h2 link.

    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(15.0));
    assert!(sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .architecture()
        .contains_component("b"));
    assert!(sim
        .node_ref::<PrismHost>(h(0))
        .unwrap()
        .deployer()
        .unwrap()
        .status()
        .is_complete());
}

#[test]
fn stale_senders_chase_migrated_components_one_hop() {
    // After "b" moves from h1 to h2, a sender with a stale directory still
    // reaches it: h1 forwards the event once toward the new location.
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(10.0));
    assert!(sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .architecture()
        .contains_component("b"));

    // Simulate a stale sender: a raw app frame addressed to "b" at its OLD
    // host h1. The old host must forward it (h1 itself runs no senders, so
    // its raw-send counter isolates the chase).
    let forwards_before = sim
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .services()
        .stats()
        .app_events_sent;
    let stray = Event::notification(EV_APP).encode().unwrap();
    let frame = serde_json::json!({ "Raw": { "to_component": "b", "event": stray } });
    sim.inject(h(0), h(1), serde_json::to_vec(&frame).unwrap(), 64);
    sim.run_until(SimTime::from_secs_f64(11.0));
    let stats = sim.node_ref::<PrismHost>(h(1)).unwrap().services().stats();
    assert_eq!(
        stats.app_events_sent,
        forwards_before + 1,
        "the stale host did not chase the migrated component"
    );
    assert_eq!(stats.events_buffered, 0, "chase should forward, not buffer");
}

#[test]
fn events_buffered_during_migration_are_replayed() {
    let mut sim = three_host_system(1.0);
    sim.run_until(SimTime::from_secs_f64(5.0));

    // Inject an app event addressed to "b" at h2 *before* b lives there;
    // the host must buffer it and replay on arrival. The forwarded marker
    // simulates an event that already chased a stale directory entry once,
    // so the host parks it instead of bouncing it again.
    let stray = Event::notification(EV_APP)
        .with_param("prism.forwarded", true)
        .encode()
        .unwrap();
    let frame = serde_json::json!({
        "Raw": { "to_component": "b", "event": stray }
    });
    sim.inject(h(0), h(2), serde_json::to_vec(&frame).unwrap(), 64);
    sim.run_until(SimTime::from_secs_f64(6.0));
    let buffered = sim
        .node_ref::<PrismHost>(h(2))
        .unwrap()
        .services()
        .stats()
        .events_buffered;
    assert!(buffered >= 1, "stray event was not buffered");

    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(12.0));
    let stats = sim.node_ref::<PrismHost>(h(2)).unwrap().services().stats();
    assert!(
        stats.events_replayed >= 1,
        "buffered events were not replayed: {stats:?}"
    );
}
