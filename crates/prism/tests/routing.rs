//! Multi-hop relay routing: hosts without direct links exchange application
//! and control traffic through source-routed `Forward` frames.

use redep_model::HostId;
use redep_netsim::{Duration, LinkSpec, SimTime, Simulator};
use redep_prism::workload::{InteractionSpec, WORKLOAD_TYPE};
use redep_prism::{host::HostConfig, ComponentFactory, PrismHost, WorkloadComponent};
use std::collections::{BTreeMap, BTreeSet};

fn h(n: u32) -> HostId {
    HostId::new(n)
}

/// A line topology h0 — h1 — h2 — h3 with static next-hop routes.
fn line_system(reliability: f64) -> Simulator {
    let hosts = [h(0), h(1), h(2), h(3)];
    let neighbors = |me: u32| -> BTreeSet<HostId> {
        hosts
            .iter()
            .copied()
            .filter(|x| x.raw() + 1 == me || x.raw() == me + 1)
            .collect()
    };
    // Next hop along the line.
    let routes = |me: u32| -> BTreeMap<HostId, HostId> {
        let mut r = BTreeMap::new();
        for dst in 0..4u32 {
            if dst == me || dst.abs_diff(me) == 1 {
                continue;
            }
            let hop = if dst > me { me + 1 } else { me - 1 };
            r.insert(h(dst), h(hop));
        }
        r
    };

    let directory: BTreeMap<String, HostId> =
        [("src".to_owned(), h(0)), ("dst".to_owned(), h(3))].into();
    let mut sim = Simulator::new(77);
    for &me in &hosts {
        let mut factory = ComponentFactory::new();
        factory.register(WORKLOAD_TYPE, WorkloadComponent::build);
        let config = HostConfig {
            deployer_host: h(0),
            neighbors: neighbors(me.raw()),
            routes: routes(me.raw()),
            monitor_window: Duration::from_secs_f64(2.0),
            epsilon: 0.5,
            stable_windows: 2,
            ..HostConfig::default()
        };
        let mut host = PrismHost::new(me, factory, config);
        if me == h(0) {
            host.enable_deployer();
            host.add_app_component(
                "src",
                WorkloadComponent::new(vec![InteractionSpec {
                    peer: "dst".into(),
                    frequency: 5.0,
                    event_size: 64,
                }]),
            )
            .unwrap();
        }
        if me == h(3) {
            host.add_app_component("dst", WorkloadComponent::new(vec![]))
                .unwrap();
        }
        host.set_initial_directory(directory.clone());
        sim.add_host(me, host);
    }
    for w in hosts.windows(2) {
        sim.set_link(
            w[0],
            w[1],
            LinkSpec {
                reliability,
                bandwidth: 1e6,
                delay: 0.002,
            },
        );
    }
    sim
}

#[test]
fn app_events_cross_three_hops() {
    let mut sim = line_system(1.0);
    sim.run_until(SimTime::from_secs_f64(10.0));
    let dst = sim.node_ref::<PrismHost>(h(3)).unwrap();
    let received = dst
        .architecture()
        .component_ref::<WorkloadComponent>("dst")
        .unwrap()
        .received();
    assert!(received >= 45, "only {received} events crossed the line");
    // The middle hosts actually relayed.
    let forwarded: u64 = [h(1), h(2)]
        .iter()
        .map(|&x| {
            sim.node_ref::<PrismHost>(x)
                .unwrap()
                .services()
                .stats()
                .frames_forwarded
        })
        .sum();
    assert!(forwarded > 0, "no frames were relayed");
}

#[test]
fn per_hop_loss_compounds_end_to_end() {
    // Three hops at 0.8 each ≈ 0.51 end-to-end delivery for raw app frames.
    let mut sim = line_system(0.8);
    sim.run_until(SimTime::from_secs_f64(60.0));
    let src = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let sent = src.services().stats().app_events_sent;
    let dst = sim.node_ref::<PrismHost>(h(3)).unwrap();
    let received = dst
        .architecture()
        .component_ref::<WorkloadComponent>("dst")
        .unwrap()
        .received();
    let ratio = received as f64 / sent as f64;
    let expected = 0.8f64.powi(3);
    assert!(
        (ratio - expected).abs() < 0.08,
        "end-to-end delivery {ratio:.3}, expected ≈{expected:.3}"
    );
}

#[test]
fn monitoring_reports_traverse_the_line_to_the_deployer() {
    let mut sim = line_system(0.9);
    sim.run_until(SimTime::from_secs_f64(40.0));
    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let snapshots = master.deployer().unwrap().snapshots();
    // All four hosts report, including h3 which is three lossy hops away.
    assert_eq!(snapshots.len(), 4, "reported: {:?}", snapshots.keys());
}

#[test]
fn migration_works_across_multiple_hops() {
    let mut sim = line_system(0.9);
    sim.run_until(SimTime::from_secs_f64(10.0));
    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("dst".to_owned(), h(1))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(60.0));
    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    assert!(master.deployer().unwrap().status().is_complete());
    assert!(sim
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .architecture()
        .contains_component("dst"));
    assert!(!sim
        .node_ref::<PrismHost>(h(3))
        .unwrap()
        .architecture()
        .contains_component("dst"));
}

#[test]
fn unroutable_destinations_are_counted_not_hung() {
    // A request toward a fictitious h9 is mediated to the deployer (h0),
    // which has no route either — it must drop and count, not loop.
    let mut sim = line_system(1.0);
    sim.run_until(SimTime::from_secs_f64(2.0));
    sim.node_mut::<PrismHost>(h(3))
        .unwrap()
        .request_component("ghost-component", h(9));
    sim.run_until(SimTime::from_secs_f64(6.0));
    let deployer_stats = sim.node_ref::<PrismHost>(h(0)).unwrap().services().stats();
    assert!(
        deployer_stats.frames_unroutable > 0,
        "the mediator did not drop the unroutable frame"
    );
    // And crucially: the mediator holds no ever-retransmitting self frames.
    let pending = sim
        .node_ref::<PrismHost>(h(0))
        .unwrap()
        .services()
        .pending_control();
    assert!(
        pending.iter().all(|(peer, _)| *peer != h(0)),
        "self-addressed reliable frames leaked: {pending:?}"
    );
}
