//! Crash-recovery tests for the durable host store: a host that crashes and
//! restarts must rebuild its pre-crash state from checkpoint + journal tail
//! (not start empty), self-check the rebuild against the pre-crash state,
//! and hand out an explicit completed/not-completed verdict for every
//! operation that was in flight at the crash instant.

use redep_model::HostId;
use redep_netsim::{Duration, LinkSpec, SimTime, Simulator};
use redep_prism::workload::{InteractionSpec, EV_APP, WORKLOAD_TYPE};
use redep_prism::{
    host::HostConfig, ComponentFactory, Event, OpKind, PrismHost, WorkloadComponent,
};
use std::collections::{BTreeMap, BTreeSet};

fn h(n: u32) -> HostId {
    HostId::new(n)
}

fn factory() -> ComponentFactory {
    let mut f = ComponentFactory::new();
    f.register(WORKLOAD_TYPE, WorkloadComponent::build);
    f
}

fn config(deployer: HostId, neighbors: &[HostId], checkpoint_interval: u32) -> HostConfig {
    HostConfig {
        deployer_host: deployer,
        neighbors: neighbors.iter().copied().collect::<BTreeSet<_>>(),
        monitor_window: Duration::from_secs_f64(2.0),
        epsilon: 0.5,
        stable_windows: 2,
        checkpoint_interval_windows: checkpoint_interval,
        ..HostConfig::default()
    }
}

/// Three fully meshed hosts; "a" on h0 talks to "b" on h1 at 5 events/s.
fn three_host_system(seed: u64, checkpoint_interval: u32) -> Simulator {
    let hosts = [h(0), h(1), h(2)];
    let mut sim = Simulator::new(seed);
    let directory: BTreeMap<String, HostId> =
        [("a".to_owned(), h(0)), ("b".to_owned(), h(1))].into();

    for &me in &hosts {
        let neighbors: Vec<HostId> = hosts.iter().copied().filter(|x| *x != me).collect();
        let mut host = PrismHost::new(me, factory(), config(h(0), &neighbors, checkpoint_interval));
        if me == h(0) {
            host.enable_deployer();
            host.add_app_component(
                "a",
                WorkloadComponent::new(vec![InteractionSpec {
                    peer: "b".into(),
                    frequency: 5.0,
                    event_size: 100,
                }]),
            )
            .unwrap();
        }
        if me == h(1) {
            host.add_app_component("b", WorkloadComponent::new(vec![]))
                .unwrap();
        }
        host.set_initial_directory(directory.clone());
        sim.add_host(me, host);
    }
    for i in 0..hosts.len() {
        for j in (i + 1)..hosts.len() {
            sim.set_link(hosts[i], hosts[j], LinkSpec::default());
        }
    }
    sim
}

#[test]
fn crash_recovery_replays_journal_and_preserves_state() {
    let mut sim = three_host_system(11, 4);
    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.set_host_up(h(1), false);
    let at_crash = sim
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(at_crash > 0, "no traffic before the crash");

    sim.run_until(SimTime::from_secs_f64(8.0));
    sim.set_host_up(h(1), true);
    sim.run_until(SimTime::from_secs_f64(8.5));

    let host1 = sim.node_ref::<PrismHost>(h(1)).unwrap();
    let reports = host1.recovery_reports();
    assert_eq!(reports.len(), 1, "exactly one restart, one report");
    let report = &reports[0];
    assert!(
        report.state_equiv,
        "recovered state diverged from the pre-crash state: {report:?}"
    );
    assert!(report.replayed > 0, "journal tail was empty: {report:?}");
    assert!(
        !report.verdicts.is_empty(),
        "no verdicts for in-flight operations"
    );
    // The component survived the crash with its counters intact.
    let after_restart = host1
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(
        after_restart >= at_crash,
        "recovery lost state: {at_crash} -> {after_restart}"
    );

    // Traffic resumes into the recovered component.
    sim.run_until(SimTime::from_secs_f64(20.0));
    let later = sim
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .architecture()
        .component_ref::<WorkloadComponent>("b")
        .unwrap()
        .received();
    assert!(
        later >= after_restart + 20,
        "traffic did not resume after recovery: {after_restart} -> {later}"
    );
}

#[test]
fn periodic_checkpoints_shorten_the_replayed_tail() {
    // A host checkpointing every monitor window recovers from a recent
    // checkpoint; one that never checkpoints after start replays everything
    // since checkpoint 0. Both must pass the state-equivalence self-check.
    let mut eager = three_host_system(11, 1);
    eager.run_until(SimTime::from_secs_f64(11.0));
    eager.set_host_up(h(1), false);
    eager.run_until(SimTime::from_secs_f64(12.0));
    eager.set_host_up(h(1), true);
    eager.run_until(SimTime::from_secs_f64(12.5));
    let eager_report = eager
        .node_ref::<PrismHost>(h(1))
        .unwrap()
        .recovery_reports()[0]
        .clone();

    let mut lazy = three_host_system(11, u32::MAX);
    lazy.run_until(SimTime::from_secs_f64(11.0));
    lazy.set_host_up(h(1), false);
    lazy.run_until(SimTime::from_secs_f64(12.0));
    lazy.set_host_up(h(1), true);
    lazy.run_until(SimTime::from_secs_f64(12.5));
    let lazy_report = lazy.node_ref::<PrismHost>(h(1)).unwrap().recovery_reports()[0].clone();

    assert!(eager_report.state_equiv, "{eager_report:?}");
    assert!(lazy_report.state_equiv, "{lazy_report:?}");
    assert!(
        eager_report.checkpoint_seq > 0,
        "eager host never took a periodic checkpoint: {eager_report:?}"
    );
    assert_eq!(
        lazy_report.checkpoint_seq, 0,
        "lazy host should recover from checkpoint 0: {lazy_report:?}"
    );
    assert!(
        eager_report.replayed < lazy_report.replayed,
        "checkpointing did not shorten the tail: eager {} vs lazy {}",
        eager_report.replayed,
        lazy_report.replayed
    );
}

#[test]
fn recovery_verdicts_flag_unfinished_operations() {
    // The master crashes right after ordering a move; on restart the
    // recovered deployer still holds the move as pending, so recovery must
    // report it with an explicit not-completed verdict (plus the monitor
    // window that was open at the crash).
    let mut sim = three_host_system(11, 4);
    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.set_host_up(h(0), false);
    sim.run_until(SimTime::from_secs_f64(8.0));
    sim.set_host_up(h(0), true);
    sim.run_until(SimTime::from_secs_f64(8.5));

    let master = sim.node_ref::<PrismHost>(h(0)).unwrap();
    let report = &master.recovery_reports()[0];
    assert!(report.state_equiv, "{report:?}");
    let pending_move = report
        .verdicts
        .iter()
        .find(|v| v.kind == OpKind::MigrationMove && v.subject == "b")
        .expect("no verdict for the in-flight move");
    assert!(
        !pending_move.completed,
        "a move interrupted by the crash was reported completed"
    );
    assert!(
        report
            .verdicts
            .iter()
            .any(|v| v.kind == OpKind::MonitorWindow && !v.completed),
        "the open monitor window must get a not-completed verdict"
    );
}

#[test]
fn buffered_events_survive_the_crash_and_replay_after_migration() {
    // An event parked for a not-yet-arrived component is journaled; if the
    // host crashes while it waits, recovery restores the parking buffer
    // (with a not-completed verdict) and the event still replays when the
    // component finally lands.
    let mut sim = three_host_system(11, 4);
    sim.run_until(SimTime::from_secs_f64(5.0));
    let stray = Event::notification(EV_APP)
        .with_param("prism.forwarded", true)
        .encode()
        .unwrap();
    let frame = serde_json::json!({ "Raw": { "to_component": "b", "event": stray } });
    sim.inject(h(0), h(2), serde_json::to_vec(&frame).unwrap(), 64);
    sim.run_until(SimTime::from_secs_f64(6.0));
    assert!(
        sim.node_ref::<PrismHost>(h(2))
            .unwrap()
            .services()
            .stats()
            .events_buffered
            >= 1,
        "stray event was not buffered"
    );

    sim.set_host_up(h(2), false);
    sim.run_until(SimTime::from_secs_f64(8.0));
    sim.set_host_up(h(2), true);
    sim.run_until(SimTime::from_secs_f64(8.5));

    let report = &sim.node_ref::<PrismHost>(h(2)).unwrap().recovery_reports()[0];
    assert!(
        report
            .verdicts
            .iter()
            .any(|v| v.kind == OpKind::BufferedEvent && v.subject == "b" && !v.completed),
        "no not-completed verdict for the parked event: {report:?}"
    );

    // The parked event survives recovery: migrate "b" in and it replays.
    sim.node_mut::<PrismHost>(h(0))
        .unwrap()
        .effect_redeployment([("b".to_owned(), h(2))].into())
        .unwrap();
    sim.run_until(SimTime::from_secs_f64(16.0));
    let stats = sim.node_ref::<PrismHost>(h(2)).unwrap().services().stats();
    assert!(
        stats.events_replayed >= 1,
        "the recovered buffer was not replayed: {stats:?}"
    );
}

#[test]
fn journals_are_byte_identical_across_identical_runs() {
    // Two runs of the same seeded scenario (including a crash + restart)
    // must leave byte-identical durable stores on every host — the
    // determinism contract the bench campaign gates on.
    let run = |()| {
        let mut sim = three_host_system(17, 4);
        sim.run_until(SimTime::from_secs_f64(5.0));
        sim.set_host_up(h(1), false);
        sim.run_until(SimTime::from_secs_f64(8.0));
        sim.set_host_up(h(1), true);
        sim.run_until(SimTime::from_secs_f64(20.0));
        [h(0), h(1), h(2)]
            .iter()
            .map(|&x| sim.node_ref::<PrismHost>(x).unwrap().durable_digest())
            .collect::<Vec<_>>()
    };
    let first = run(());
    let second = run(());
    assert_eq!(first, second, "durable stores diverged between runs");
}
