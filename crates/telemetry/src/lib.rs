//! Sim-time-aware telemetry for the redep workspace.
//!
//! The paper's framework is an observability loop — monitors estimate what
//! the network does, the analyzer decides from those estimates — so the
//! instrumentation layer has two hard requirements the usual tracing stacks
//! don't:
//!
//! 1. **Determinism.** Every record is stamped with *simulation* time
//!    (microseconds as `u64`), never wall clock. Two runs with the same
//!    seed must produce byte-identical exported journals, so traces can be
//!    diffed across seeded runs.
//! 2. **Hot-path cost.** Counters and gauges are single relaxed atomic
//!    operations; the journal takes one short mutex hold per record; and a
//!    disabled [`Telemetry`] handle short-circuits before allocating, so
//!    instrumentation can stay compiled in.
//!
//! The crate deliberately takes time as a raw `u64` of microseconds rather
//! than `netsim::SimTime` — netsim *depends on* this crate, so the time
//! type cannot flow the other way. Callers stamp with
//! `SimTime::as_micros()`.
//!
//! # Layout
//!
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s; registration locks, increments never do.
//! - [`Journal`] — a bounded ring buffer of structured [`Event`]s
//!   (drop-oldest, with a drop counter so truncation is visible).
//! - [`Telemetry`] — a cheap-to-clone handle bundling both plus the
//!   enabled/disabled switch; [`Telemetry::export_jsonl`] renders the
//!   machine-readable journal and [`Telemetry::summary`] the human one.
//! - [`trace`] — causal trace contexts ([`TraceCtx`]) with deterministic
//!   span-id generation ([`SpanIdGen`]).
//! - [`merge_journals`] / [`merge_export_jsonl`] — reconstruct the single
//!   global record order from the per-shard journals of the sharded
//!   simulator, using the `(sim_time, event_key)` order stamps written via
//!   [`Telemetry::set_order`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::{Number, Value};

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use trace::{SpanIdGen, TraceCtx};

/// One structured field value attached to an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text (static labels stay unallocated).
    Str(Cow<'static, str>),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}

field_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(Cow::Owned(v))
    }
}

impl FieldValue {
    fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Number(Number::U(*v)),
            FieldValue::I64(v) => Value::Number(Number::I(*v)),
            FieldValue::F64(v) => Value::Number(Number::F(*v)),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::String(v.clone().into_owned()),
        }
    }
}

/// One journal record: a named occurrence at a simulation time, with
/// structured fields. Spans are events that also carry an end time.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Simulation time of the event (or span start), in microseconds.
    pub t_us: u64,
    /// Span end in simulation microseconds; `None` for point events.
    pub end_us: Option<u64>,
    /// Dot-separated event name, e.g. `"net.link.drop"`.
    pub name: Cow<'static, str>,
    /// Structured payload, in insertion order.
    pub fields: Vec<(Cow<'static, str>, FieldValue)>,
    /// Global-order stamp `[sim_time_us, event_key, intra]` used to merge
    /// per-shard journals back into the single-queue processing order (see
    /// [`merge_journals`]). The sharded simulator sets the first two
    /// components per processed sim event via [`Telemetry::set_order`]; the
    /// third counts records emitted under that sim event. Single-queue runs
    /// never call `set_order`, so the first two components stay zero there,
    /// and the stamp never appears in exported JSONL.
    pub ord: [u64; 3],
}

impl Event {
    /// Renders the event as one JSON object (the JSONL line without the
    /// trailing newline). Field keys are emitted in sorted order so output
    /// is independent of instrumentation-site ordering.
    pub fn to_json(&self) -> Value {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("t_us".to_owned(), Value::Number(Number::U(self.t_us)));
        if let Some(end) = self.end_us {
            obj.insert("end_us".to_owned(), Value::Number(Number::U(end)));
        }
        obj.insert(
            "event".to_owned(),
            Value::String(self.name.clone().into_owned()),
        );
        if !self.fields.is_empty() {
            let fields: std::collections::BTreeMap<String, Value> = self
                .fields
                .iter()
                .map(|(k, v)| (k.clone().into_owned(), v.to_json()))
                .collect();
            obj.insert("fields".to_owned(), Value::Object(fields));
        }
        Value::Object(obj)
    }
}

/// A bounded, drop-oldest ring buffer of [`Event`]s.
///
/// Records hold a mutex only long enough to push; when full, the oldest
/// record is evicted and counted in [`Journal::dropped`], so a truncated
/// journal is always detectable.
pub struct Journal {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
    ord0: AtomicU64,
    ord1: AtomicU64,
    intra: AtomicU64,
}

impl Journal {
    /// A journal retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Journal {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            ord0: AtomicU64::new(0),
            ord1: AtomicU64::new(0),
            intra: AtomicU64::new(0),
        }
    }

    /// Sets the order stamp applied to subsequent records: `t_us` is the
    /// simulation time of the sim event being processed and `key` its
    /// queue tie-break key. Resets the intra-event counter. The sharded
    /// simulator calls this before every node/fault callback so that
    /// per-shard journals can be merged back into global processing order.
    pub fn set_order(&self, t_us: u64, key: u64) {
        self.ord0.store(t_us, Ordering::Relaxed);
        self.ord1.store(key, Ordering::Relaxed);
        self.intra.store(0, Ordering::Relaxed);
    }

    /// Appends one event, evicting the oldest when at capacity. The event
    /// is stamped with the current order (see [`Journal::set_order`]).
    pub fn record(&self, mut event: Event) {
        event.ord = [
            self.ord0.load(Ordering::Relaxed),
            self.ord1.load(Ordering::Relaxed),
            self.intra.fetch_add(1, Ordering::Relaxed),
        ];
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().drain(..).collect()
    }
}

/// Builder returned by [`Telemetry::event`] / [`Telemetry::span`]; collects
/// fields and writes the record on [`emit`](EventBuilder::emit). When the
/// telemetry handle is disabled the builder is inert and never allocates.
pub struct EventBuilder<'a> {
    journal: Option<&'a Journal>,
    event: Event,
}

impl EventBuilder<'_> {
    /// Attaches one structured field.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if self.journal.is_some() {
            self.event.fields.push((Cow::Borrowed(key), value.into()));
        }
        self
    }

    /// Attaches one structured field with an owned key (prefer
    /// [`field`](Self::field) for static keys).
    #[must_use]
    pub fn field_owned(mut self, key: String, value: impl Into<FieldValue>) -> Self {
        if self.journal.is_some() {
            self.event.fields.push((Cow::Owned(key), value.into()));
        }
        self
    }

    /// Attaches a causal trace context as the standard `trace_id` /
    /// `span_id` / `parent_id` fields.
    #[must_use]
    pub fn trace(mut self, ctx: TraceCtx) -> Self {
        if self.journal.is_some() {
            self.event.fields.push((
                Cow::Borrowed(trace::FIELD_TRACE_ID),
                FieldValue::U64(ctx.trace_id),
            ));
            self.event.fields.push((
                Cow::Borrowed(trace::FIELD_SPAN_ID),
                FieldValue::U64(ctx.span_id),
            ));
            if let Some(parent) = ctx.parent_id {
                self.event.fields.push((
                    Cow::Borrowed(trace::FIELD_PARENT_ID),
                    FieldValue::U64(parent),
                ));
            }
        }
        self
    }

    /// Attaches a trace context when one is present; no-op otherwise.
    #[must_use]
    pub fn trace_opt(self, ctx: Option<TraceCtx>) -> Self {
        match ctx {
            Some(ctx) => self.trace(ctx),
            None => self,
        }
    }

    /// Writes the record into the journal.
    pub fn emit(self) {
        if let Some(journal) = self.journal {
            journal.record(self.event);
        }
    }
}

/// Shared telemetry handle: metrics + journal + the on/off switch.
///
/// Cloning is an `Arc` bump; every layer of the system can hold its own
/// handle. A handle built with [`Telemetry::disabled`] keeps the full API
/// but records nothing — instrumentation stays compiled in and costs a
/// branch.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

struct Inner {
    enabled: bool,
    metrics: MetricsRegistry,
    journal: Journal,
}

/// Default journal capacity: enough for the longest experiment runs while
/// bounding memory at roughly a few MiB.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Telemetry {
    /// An enabled handle with the given journal capacity.
    pub fn new(journal_capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: true,
                metrics: MetricsRegistry::new(),
                journal: Journal::new(journal_capacity),
            }),
        }
    }

    /// A no-op handle: full API, records nothing, near-zero cost.
    pub fn disabled() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: false,
                metrics: MetricsRegistry::new(),
                journal: Journal::new(1),
            }),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The metrics registry (counters/gauges/histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The event journal.
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// Sets the order stamp for subsequent journal records; see
    /// [`Journal::set_order`]. No-op on a disabled handle.
    pub fn set_order(&self, t_us: u64, key: u64) {
        if self.inner.enabled {
            self.inner.journal.set_order(t_us, key);
        }
    }

    /// Starts a point event at simulation time `t_us`.
    #[must_use]
    pub fn event(&self, name: &'static str, t_us: u64) -> EventBuilder<'_> {
        EventBuilder {
            journal: self.inner.enabled.then(|| &self.inner.journal),
            event: Event {
                t_us,
                end_us: None,
                name: Cow::Borrowed(name),
                fields: Vec::new(),
                ord: [0; 3],
            },
        }
    }

    /// Starts a span record covering `[start_us, end_us]` in simulation time.
    #[must_use]
    pub fn span(&self, name: &'static str, start_us: u64, end_us: u64) -> EventBuilder<'_> {
        EventBuilder {
            journal: self.inner.enabled.then(|| &self.inner.journal),
            event: Event {
                t_us: start_us,
                end_us: Some(end_us),
                name: Cow::Borrowed(name),
                fields: Vec::new(),
                ord: [0; 3],
            },
        }
    }

    /// Renders the journal as JSON Lines: one deterministic, sorted-key
    /// object per event, oldest first.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.inner.journal.snapshot() {
            out.push_str(
                &serde_json::to_string(&event.to_json()).expect("journal events always serialize"),
            );
            out.push('\n');
        }
        out
    }

    /// Human-readable run digest: journal shape, event counts by name, and
    /// every registered metric.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let events = self.inner.journal.snapshot();
        let dropped = self.inner.journal.dropped();
        let _ = writeln!(
            out,
            "telemetry summary: {} events retained, {} dropped{}",
            events.len(),
            dropped,
            if self.inner.enabled {
                ""
            } else {
                " (disabled)"
            }
        );
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            let _ = writeln!(
                out,
                "  sim-time range: {:.6}s .. {:.6}s",
                first.t_us as f64 / 1e6,
                last.t_us as f64 / 1e6
            );
        }
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for event in &events {
            *counts.entry(event.name.as_ref()).or_default() += 1;
        }
        if !counts.is_empty() {
            let _ = writeln!(out, "  events by name:");
            for (name, n) in counts {
                let _ = writeln!(out, "    {name:<40} {n:>8}");
            }
        }
        let mut durations: std::collections::BTreeMap<&str, Vec<f64>> =
            std::collections::BTreeMap::new();
        for event in &events {
            if let Some(end) = event.end_us {
                durations
                    .entry(event.name.as_ref())
                    .or_default()
                    .push(end.saturating_sub(event.t_us) as f64 / 1e3);
            }
        }
        if !durations.is_empty() {
            let _ = writeln!(out, "  span durations (ms):");
            for (name, samples) in durations {
                if let Some([p50, p90, p99]) = percentiles(&samples) {
                    let _ = writeln!(
                        out,
                        "    {name:<40} n={:>6} p50={p50:.3} p90={p90:.3} p99={p99:.3}",
                        samples.len()
                    );
                }
            }
        }
        out.push_str(&self.inner.metrics.render());
        out
    }
}

/// Exact nearest-rank p50/p90/p99 over a sample set; `None` when empty.
///
/// Unlike [`HistogramSnapshot::quantile`] this sorts the raw samples, so
/// it is exact — use it for bounded sample sets (per-window availability,
/// span durations), not unbounded hot-path streams.
pub fn percentiles(samples: &[f64]) -> Option<[f64; 3]> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    };
    Some([pick(0.50), pick(0.90), pick(0.99)])
}

/// Merges per-shard journals into the global processing order.
///
/// Each shard of the sharded simulator journals into its own [`Telemetry`]
/// handle, stamping every record with the `(sim_time, queue_key)` of the sim
/// event that produced it (see [`Telemetry::set_order`]). Because those keys
/// reproduce the single-queue pop order, sorting the concatenation by
/// `(ord, shard_index)` yields exactly the record sequence a single-shard run
/// would have journaled — provided no shard's journal dropped records.
///
/// Within one shard the stamps are non-decreasing, so a stable sort here is
/// a k-way merge; shard index only breaks ties between records that carry an
/// identical stamp, which cannot happen for records of distinct sim events.
pub fn merge_journals(shards: &[&Telemetry]) -> Vec<Event> {
    let mut all: Vec<(usize, Event)> = Vec::new();
    for (idx, tele) in shards.iter().enumerate() {
        all.extend(tele.journal().snapshot().into_iter().map(|e| (idx, e)));
    }
    all.sort_by(|(ia, a), (ib, b)| a.ord.cmp(&b.ord).then(ia.cmp(ib)));
    all.into_iter().map(|(_, e)| e).collect()
}

/// Renders [`merge_journals`] as JSON Lines — the sharded counterpart of
/// [`Telemetry::export_jsonl`], byte-identical to a single-shard export of
/// the same run when no journal overflowed.
pub fn merge_export_jsonl(shards: &[&Telemetry]) -> String {
    let mut out = String::new();
    for event in merge_journals(shards) {
        out.push_str(
            &serde_json::to_string(&event.to_json()).expect("journal events always serialize"),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let tele = Telemetry::new(16);
        tele.event("net.link.drop", 1_500_000)
            .field("src", 1u32)
            .field("dst", 2u32)
            .field("reason", "loss")
            .emit();
        tele.span("prism.migration", 2_000_000, 2_500_000)
            .field("component", "comp_a".to_owned())
            .field("buffered", 7u64)
            .emit();
        let jsonl = tele.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("t_us").and_then(Value::as_u64), Some(1_500_000));
        assert_eq!(
            first.get("event").and_then(Value::as_str),
            Some("net.link.drop")
        );
        assert_eq!(
            first
                .get("fields")
                .and_then(|f| f.get("reason"))
                .and_then(Value::as_str),
            Some("loss")
        );
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(
            second.get("end_us").and_then(Value::as_u64),
            Some(2_500_000)
        );
    }

    #[test]
    fn journal_drops_oldest_and_counts() {
        let tele = Telemetry::new(3);
        for i in 0..5u64 {
            tele.event("tick", i).emit();
        }
        let events = tele.journal().snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].t_us, 2);
        assert_eq!(tele.journal().dropped(), 2);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        tele.event("x", 1).field("a", 1u64).emit();
        assert!(tele.journal().is_empty());
        assert!(!tele.is_enabled());
        // Metrics still function (they are registry-owned, not gated), so
        // callers never need to branch.
        tele.metrics().counter("c").inc();
        assert_eq!(tele.metrics().counter("c").get(), 1);
    }

    #[test]
    fn export_is_deterministic() {
        let run = || {
            let tele = Telemetry::new(64);
            for i in 0..10u64 {
                tele.event("step", i * 1000)
                    .field("z_last", i)
                    .field("a_first", i * 2)
                    .emit();
            }
            tele.export_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        assert_eq!(percentiles(&[]), None);
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let [p50, p90, p99] = percentiles(&samples).unwrap();
        assert_eq!(p50, 50.0);
        assert_eq!(p90, 90.0);
        assert_eq!(p99, 99.0);
        assert_eq!(percentiles(&[7.0]), Some([7.0, 7.0, 7.0]));
    }

    #[test]
    fn summary_reports_span_duration_percentiles() {
        let tele = Telemetry::new(16);
        for i in 0..4u64 {
            tele.span("core.cycle", i * 1000, i * 1000 + 500 + i).emit();
        }
        let summary = tele.summary();
        assert!(summary.contains("span durations (ms)"), "{summary}");
        assert!(summary.contains("p90="), "{summary}");
    }

    #[test]
    fn summary_mentions_counts_and_metrics() {
        let tele = Telemetry::new(16);
        tele.event("a.b", 0).emit();
        tele.event("a.b", 1).emit();
        tele.metrics().counter("net.sent").add(5);
        let summary = tele.summary();
        assert!(summary.contains("a.b"), "{summary}");
        assert!(summary.contains("net.sent"), "{summary}");
        assert!(summary.contains("2 events retained"), "{summary}");
    }
}
