//! Deterministic causal tracing and the trace-analysis engine.
//!
//! Every control-plane record in a run journal can carry a [`TraceCtx`]:
//! a trace identifier (one per dependability cycle or fault episode), a
//! span identifier for the record itself, and an optional parent span.
//! IDs come from [`SpanIdGen`] — per-instance monotonic counters, no RNG
//! and no wall clock — so two runs with the same seed allocate the same
//! IDs in the same order and double-run journals stay byte-identical.
//!
//! # ID layout
//!
//! ```text
//! 63      56 55              32 31                0
//! [ domain ] [ node (24 bits) ] [ counter from 1  ]
//! ```
//!
//! The domain byte keeps generators owned by different subsystems
//! (framework, host runtime, deployer, network simulator) from ever
//! colliding, and the node bits do the same for per-host generators
//! within a domain.
//!
//! # Analysis
//!
//! The second half of the module reconstructs span trees from a journal
//! ([`TraceForest::build`]), computes per-trace critical paths and phase
//! latency breakdowns, windows per-host availability out of
//! `net.host.state` transitions, and checks the structural invariants the
//! fault campaign relies on: every child has a live parent, every
//! migration span settles, and no cycle ends with the model disagreeing
//! with the actual deployment. [`summarize`] and [`diff_jsonl`] are the
//! engines behind the `redep-trace` binary.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

use crate::{Event, FieldValue};

/// Field key carrying [`TraceCtx::trace_id`] on a journal record.
pub const FIELD_TRACE_ID: &str = "trace_id";
/// Field key carrying [`TraceCtx::span_id`] on a journal record.
pub const FIELD_SPAN_ID: &str = "span_id";
/// Field key carrying [`TraceCtx::parent_id`] on a journal record.
pub const FIELD_PARENT_ID: &str = "parent_id";

/// Span-ID domain for the framework control loop (analyzer/effector).
pub const DOMAIN_FRAMEWORK: u8 = 0;
/// Span-ID domain for per-host middleware runtimes.
pub const DOMAIN_HOST: u8 = 1;
/// Span-ID domain for the deployer component's migration moves.
pub const DOMAIN_DEPLOYER: u8 = 2;
/// Span-ID domain for the network simulator's fault machinery.
pub const DOMAIN_NET: u8 = 3;

/// Causal context attached to events and journal records.
///
/// `trace_id` groups everything caused by one logical episode (a
/// dependability cycle, a fault action); `span_id` names this record;
/// `parent_id` links to the span that caused it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCtx {
    /// Episode identifier shared by every span in the trace.
    pub trace_id: u64,
    /// This span's identifier, unique within the run.
    pub span_id: u64,
    /// The causing span, or `None` for a trace root.
    pub parent_id: Option<u64>,
}

impl TraceCtx {
    /// A root context: a fresh trace whose root span is the trace itself.
    pub fn root(id: u64) -> Self {
        TraceCtx {
            trace_id: id,
            span_id: id,
            parent_id: None,
        }
    }

    /// A child context in the same trace, parented to `self`.
    pub fn child(&self, span_id: u64) -> Self {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
            parent_id: Some(self.span_id),
        }
    }
}

/// Deterministic span-ID allocator: `(domain, node)` prefix plus a
/// monotonic counter starting at 1. Allocation order equals processing
/// order in the single-threaded simulator, so same-seed runs always hand
/// out identical IDs.
#[derive(Debug)]
pub struct SpanIdGen {
    base: u64,
    next: AtomicU64,
}

impl SpanIdGen {
    /// A generator whose IDs carry the given domain and node prefix.
    pub fn new(domain: u8, node: u32) -> Self {
        SpanIdGen {
            base: ((domain as u64) << 56) | (((node & 0x00FF_FFFF) as u64) << 32),
            next: AtomicU64::new(1),
        }
    }

    /// The next unique span ID.
    pub fn next_id(&self) -> u64 {
        self.base | self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a fresh root context (new trace).
    pub fn root(&self) -> TraceCtx {
        TraceCtx::root(self.next_id())
    }

    /// Allocates a fresh child context under `parent`.
    pub fn child(&self, parent: &TraceCtx) -> TraceCtx {
        parent.child(self.next_id())
    }
}

impl Clone for SpanIdGen {
    fn clone(&self) -> Self {
        SpanIdGen {
            base: self.base,
            next: AtomicU64::new(self.next.load(Ordering::Relaxed)),
        }
    }
}

/// Extracts the trace context from a journal record's fields, if present.
pub fn ctx_of(event: &Event) -> Option<TraceCtx> {
    let mut trace_id = None;
    let mut span_id = None;
    let mut parent_id = None;
    for (key, value) in &event.fields {
        let FieldValue::U64(v) = value else { continue };
        match key.as_ref() {
            FIELD_TRACE_ID => trace_id = Some(*v),
            FIELD_SPAN_ID => span_id = Some(*v),
            FIELD_PARENT_ID => parent_id = Some(*v),
            _ => {}
        }
    }
    Some(TraceCtx {
        trace_id: trace_id?,
        span_id: span_id?,
        parent_id,
    })
}

// ---------------------------------------------------------------------------
// Journal parsing (the reverse of `Event::to_json`)
// ---------------------------------------------------------------------------

fn field_from_json(value: &Value) -> Result<FieldValue, String> {
    use serde_json::Number;
    match value {
        Value::Bool(b) => Ok(FieldValue::Bool(*b)),
        Value::String(s) => Ok(FieldValue::Str(s.clone().into())),
        Value::Number(Number::U(u)) => Ok(FieldValue::U64(*u)),
        Value::Number(Number::I(i)) => Ok(FieldValue::I64(*i)),
        Value::Number(Number::F(f)) => Ok(FieldValue::F64(*f)),
        other => Err(format!("unsupported field value {other:?}")),
    }
}

fn event_from_json(value: &Value) -> Result<Event, String> {
    let obj = value.as_object().ok_or("journal line is not an object")?;
    let t_us = obj
        .get("t_us")
        .and_then(Value::as_u64)
        .ok_or("record missing `t_us`")?;
    let end_us = obj.get("end_us").and_then(Value::as_u64);
    let name = obj
        .get("event")
        .and_then(Value::as_str)
        .ok_or("record missing `event`")?
        .to_owned();
    let mut fields = Vec::new();
    if let Some(raw) = obj.get("fields") {
        let map = raw.as_object().ok_or("`fields` is not an object")?;
        for (key, val) in map {
            fields.push((key.clone().into(), field_from_json(val)?));
        }
    }
    Ok(Event {
        t_us,
        end_us,
        name: name.into(),
        fields,
        ord: [0; 3],
    })
}

/// Parses a JSONL journal (as produced by `Telemetry::export_jsonl`) back
/// into events. Blank lines are skipped; the error names the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            serde_json::parse(line).map_err(|e| format!("line {}: not JSON: {e}", i + 1))?;
        events.push(event_from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Span-tree reconstruction
// ---------------------------------------------------------------------------

/// One reconstructed span: every journal record sharing a `span_id`,
/// merged. Open markers and their settle record deliberately share an ID,
/// so the merged interval runs from the earliest record start to the
/// latest recorded end.
#[derive(Clone, Debug)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique span identifier.
    pub span_id: u64,
    /// Causing span, if any.
    pub parent_id: Option<u64>,
    /// Display name: the settling record's name when one exists, else the
    /// first record's.
    pub name: String,
    /// Earliest record start, microseconds of sim time.
    pub start_us: u64,
    /// Latest recorded end; `None` when the span never settled.
    pub end_us: Option<u64>,
    /// Every distinct record name merged into this span, in arrival order.
    pub record_names: Vec<String>,
    /// Merged non-trace fields (first writer wins), stringified.
    pub fields: BTreeMap<String, String>,
    /// Child spans, sorted by `(start_us, span_id)`.
    pub children: Vec<u64>,
    /// Number of journal records merged into this span.
    pub records: usize,
}

impl Span {
    /// Span duration in microseconds, when settled.
    pub fn duration_us(&self) -> Option<u64> {
        self.end_us.map(|e| e.saturating_sub(self.start_us))
    }

    fn effective_end(&self) -> u64 {
        self.end_us.unwrap_or(self.start_us)
    }

    /// Whether any merged record marks this span as an open marker that
    /// must later settle (names ending in `.open`).
    pub fn has_open_marker(&self) -> bool {
        self.record_names.iter().any(|n| n.ends_with(".open"))
    }
}

fn field_display(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) => format!("{v:.4}"),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Str(v) => v.clone().into_owned(),
    }
}

/// Totals for one span name inside a trace or a whole journal.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStat {
    /// Number of settled spans with this name.
    pub count: u64,
    /// Sum of their durations, microseconds.
    pub total_us: u64,
}

/// All spans of one trace, indexed by span ID.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The shared trace identifier.
    pub trace_id: u64,
    /// Spans by ID.
    pub spans: BTreeMap<u64, Span>,
    /// Spans without a parent, sorted by `(start_us, span_id)`.
    pub roots: Vec<u64>,
}

impl TraceTree {
    /// The earliest root span, if the trace is non-empty.
    pub fn root_span(&self) -> Option<&Span> {
        self.roots.first().and_then(|id| self.spans.get(id))
    }

    /// Earliest span start in the trace.
    pub fn start_us(&self) -> u64 {
        self.spans.values().map(|s| s.start_us).min().unwrap_or(0)
    }

    /// Latest effective span end in the trace.
    pub fn end_us(&self) -> u64 {
        self.spans
            .values()
            .map(Span::effective_end)
            .max()
            .unwrap_or(0)
    }

    /// The chain from the root to the leaf that finishes last — where the
    /// trace's wall-clock (sim-clock) time actually went. Ties break on
    /// span ID so the path is deterministic.
    pub fn critical_path(&self) -> Vec<&Span> {
        let mut path = Vec::new();
        let Some(mut current) = self.root_span() else {
            return path;
        };
        loop {
            path.push(current);
            let next = current
                .children
                .iter()
                .filter_map(|id| self.spans.get(id))
                .max_by_key(|s| (s.effective_end(), s.span_id));
            match next {
                Some(child) => current = child,
                None => return path,
            }
        }
    }

    /// Settled-span duration totals by span name.
    pub fn phase_breakdown(&self) -> BTreeMap<String, PhaseStat> {
        let mut out: BTreeMap<String, PhaseStat> = BTreeMap::new();
        for span in self.spans.values() {
            if let Some(d) = span.duration_us() {
                let stat = out.entry(span.name.clone()).or_default();
                stat.count += 1;
                stat.total_us += d;
            }
        }
        out
    }

    fn render_span(&self, out: &mut String, id: u64, depth: usize, lines: &mut usize) {
        const MAX_LINES: usize = 200;
        let Some(span) = self.spans.get(&id) else {
            return;
        };
        if *lines >= MAX_LINES {
            return;
        }
        *lines += 1;
        let indent = "  ".repeat(depth);
        let timing = match span.end_us {
            Some(end) => format!(
                "{:.3}s +{:.3}s",
                span.start_us as f64 / 1e6,
                (end.saturating_sub(span.start_us)) as f64 / 1e6
            ),
            None => format!("{:.3}s (unsettled)", span.start_us as f64 / 1e6),
        };
        let mut annot = String::new();
        for key in [
            "component",
            "dest",
            "outcome",
            "phase",
            "mode",
            "action",
            "host",
        ] {
            if let Some(v) = span.fields.get(key) {
                let _ = write!(annot, " {key}={v}");
            }
        }
        let _ = writeln!(out, "    {indent}{} [{timing}]{annot}", span.name);
        if *lines == MAX_LINES {
            let _ = writeln!(out, "    {indent}  … (tree truncated)");
            return;
        }
        for child in &span.children {
            self.render_span(out, *child, depth + 1, lines);
        }
    }

    /// Indented tree rendering of the whole trace (capped to stay readable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut lines = 0usize;
        for root in &self.roots {
            self.render_span(&mut out, *root, 0, &mut lines);
        }
        out
    }
}

/// Every trace in a journal, plus the record counts outside any trace.
#[derive(Clone, Debug, Default)]
pub struct TraceForest {
    /// Traces by trace ID.
    pub traces: BTreeMap<u64, TraceTree>,
    /// Records carrying a trace context.
    pub traced_records: usize,
    /// Records without one (data-plane and legacy events).
    pub untraced_records: usize,
}

impl TraceForest {
    /// Reconstructs span trees from journal records. Records sharing a
    /// `(trace_id, span_id)` pair merge into one span (earliest start,
    /// latest end); the settling record — the one carrying `end_us` —
    /// names the span.
    pub fn build(events: &[Event]) -> TraceForest {
        let mut forest = TraceForest::default();
        for event in events {
            let Some(ctx) = ctx_of(event) else {
                forest.untraced_records += 1;
                continue;
            };
            forest.traced_records += 1;
            let tree = forest
                .traces
                .entry(ctx.trace_id)
                .or_insert_with(|| TraceTree {
                    trace_id: ctx.trace_id,
                    spans: BTreeMap::new(),
                    roots: Vec::new(),
                });
            let span = tree.spans.entry(ctx.span_id).or_insert_with(|| Span {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_id: ctx.parent_id,
                name: event.name.clone().into_owned(),
                start_us: event.t_us,
                end_us: None,
                record_names: Vec::new(),
                fields: BTreeMap::new(),
                children: Vec::new(),
                records: 0,
            });
            span.records += 1;
            span.start_us = span.start_us.min(event.t_us);
            if let Some(end) = event.end_us {
                if span.end_us.is_none_or(|e| end > e) {
                    span.end_us = Some(end);
                    // The settling record is authoritative for the name.
                    span.name = event.name.clone().into_owned();
                }
            }
            // A record that knows its parent wins over one that does not
            // (the open marker may arrive before or after the settle).
            if span.parent_id.is_none() {
                span.parent_id = ctx.parent_id;
            }
            let name = event.name.as_ref();
            if !span.record_names.iter().any(|n| n == name) {
                span.record_names.push(name.to_owned());
            }
            for (key, value) in &event.fields {
                let key = key.as_ref();
                if key == FIELD_TRACE_ID || key == FIELD_SPAN_ID || key == FIELD_PARENT_ID {
                    continue;
                }
                span.fields
                    .entry(key.to_owned())
                    .or_insert_with(|| field_display(value));
            }
        }
        for tree in forest.traces.values_mut() {
            let mut edges: Vec<(u64, u64, u64)> = Vec::new(); // (parent, start, child)
            let mut roots: Vec<(u64, u64)> = Vec::new();
            for span in tree.spans.values() {
                match span.parent_id {
                    Some(p) if tree.spans.contains_key(&p) => {
                        edges.push((p, span.start_us, span.span_id));
                    }
                    // Orphans render as roots; `check` still reports them.
                    _ => roots.push((span.start_us, span.span_id)),
                }
            }
            edges.sort_unstable();
            roots.sort_unstable();
            for (parent, _, child) in edges {
                let parent = tree.spans.get_mut(&parent).expect("edge keys exist");
                parent.children.push(child);
            }
            // Order children by (start, id) for stable rendering.
            let starts: BTreeMap<u64, u64> =
                tree.spans.iter().map(|(id, s)| (*id, s.start_us)).collect();
            for span in tree.spans.values_mut() {
                span.children
                    .sort_by_key(|id| (starts.get(id).copied().unwrap_or(0), *id));
            }
            tree.roots = roots.into_iter().map(|(_, id)| id).collect();
        }
        forest
    }

    /// Structural invariant violations: orphaned children, children that
    /// start before their parent, and open markers that never settled.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for tree in self.traces.values() {
            for span in tree.spans.values() {
                if let Some(parent_id) = span.parent_id {
                    match tree.spans.get(&parent_id) {
                        None => violations.push(format!(
                            "trace {:#x}: span {:#x} ({}) references missing parent {:#x}",
                            tree.trace_id, span.span_id, span.name, parent_id
                        )),
                        Some(parent) if span.start_us < parent.start_us => {
                            violations.push(format!(
                                "trace {:#x}: span {:#x} ({}) starts at {}us before its \
                                 parent {:#x} ({}) at {}us",
                                tree.trace_id,
                                span.span_id,
                                span.name,
                                span.start_us,
                                parent_id,
                                parent.name,
                                parent.start_us
                            ))
                        }
                        Some(_) => {}
                    }
                }
                if span.has_open_marker() && span.end_us.is_none() {
                    violations.push(format!(
                        "trace {:#x}: span {:#x} ({}) opened at {}us but never settled",
                        tree.trace_id, span.span_id, span.name, span.start_us
                    ));
                }
            }
        }
        violations
    }

    /// Settled-span duration totals by name, across every trace.
    pub fn phase_totals(&self) -> BTreeMap<String, PhaseStat> {
        let mut out: BTreeMap<String, PhaseStat> = BTreeMap::new();
        for tree in self.traces.values() {
            for (name, stat) in tree.phase_breakdown() {
                let entry = out.entry(name).or_default();
                entry.count += stat.count;
                entry.total_us += stat.total_us;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Journal-level checks and summaries
// ---------------------------------------------------------------------------

fn field_bool(event: &Event, key: &str) -> Option<bool> {
    event.fields.iter().find_map(|(k, v)| match v {
        FieldValue::Bool(b) if k.as_ref() == key => Some(*b),
        _ => None,
    })
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event.fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(u) if k.as_ref() == key => Some(*u),
        _ => None,
    })
}

/// Full invariant check over a journal: structural span-tree invariants
/// plus the cycle-level consistency rule — no `core.cycle` record may end
/// with the analyzer's model disagreeing with the actual deployment.
pub fn check_journal(events: &[Event]) -> Vec<String> {
    let forest = TraceForest::build(events);
    let mut violations = forest.check();
    for event in events {
        if event.name == "core.cycle" {
            if let Some(false) = field_bool(event, "model_matches_actual") {
                violations.push(format!(
                    "cycle at {}us ended with model != actual deployment",
                    event.t_us
                ));
            }
        }
    }
    violations
}

/// Windowed per-host availability from `net.host.state` transitions:
/// the up-fraction of each `window_us`-wide window from time 0 to the
/// last event. Hosts are assumed up until their first transition.
pub fn host_availability(events: &[Event], window_us: u64) -> BTreeMap<u64, Vec<f64>> {
    let window_us = window_us.max(1);
    let end = events
        .iter()
        .map(|e| e.end_us.unwrap_or(e.t_us))
        .max()
        .unwrap_or(0);
    let mut transitions: BTreeMap<u64, Vec<(u64, bool)>> = BTreeMap::new();
    for event in events {
        if event.name != "net.host.state" {
            continue;
        }
        let (Some(host), Some(up)) = (field_u64(event, "host"), field_bool(event, "up")) else {
            continue;
        };
        transitions.entry(host).or_default().push((event.t_us, up));
    }
    let windows = (end / window_us + 1) as usize;
    let mut out = BTreeMap::new();
    for (host, mut changes) in transitions {
        changes.sort_by_key(|&(t, _)| t);
        let mut per_window = vec![0u64; windows]; // up-time per window, us
        let mut cursor = 0u64;
        let mut up = true;
        let credit = |from: u64, to: u64, per_window: &mut Vec<u64>| {
            let mut t = from;
            while t < to {
                let idx = (t / window_us) as usize;
                let boundary = ((t / window_us) + 1) * window_us;
                let step = boundary.min(to) - t;
                if let Some(slot) = per_window.get_mut(idx) {
                    *slot += step;
                }
                t += step;
            }
        };
        for (t, next_up) in changes {
            let t = t.min(end);
            if up {
                credit(cursor, t, &mut per_window);
            }
            cursor = t;
            up = next_up;
        }
        if up {
            credit(cursor, end, &mut per_window);
        }
        let fractions = per_window
            .iter()
            .enumerate()
            .map(|(i, &us)| {
                let span = if i + 1 == windows {
                    (end - i as u64 * window_us).max(1)
                } else {
                    window_us
                };
                us as f64 / span as f64
            })
            .collect();
        out.insert(host, fractions);
    }
    out
}

fn fmt_secs(us: u64) -> String {
    format!("{:.3}s", us as f64 / 1e6)
}

/// Human-readable digest of one journal: record/trace counts, phase
/// latency totals, windowed host availability, the slowest trace's full
/// span tree and critical path, and the invariant verdict.
pub fn summarize(events: &[Event]) -> String {
    let forest = TraceForest::build(events);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "journal: {} records ({} traced, {} untraced), {} traces",
        events.len(),
        forest.traced_records,
        forest.untraced_records,
        forest.traces.len()
    );

    let phases = forest.phase_totals();
    if !phases.is_empty() {
        let _ = writeln!(out, "  phase totals (settled spans):");
        for (name, stat) in &phases {
            let mean = stat.total_us as f64 / stat.count.max(1) as f64 / 1e6;
            let _ = writeln!(
                out,
                "    {name:<36} {:>5} spans  total {:>9}  mean {mean:.3}s",
                stat.count,
                fmt_secs(stat.total_us)
            );
        }
    }

    let availability = host_availability(events, 1_000_000);
    if !availability.is_empty() {
        let _ = writeln!(out, "  availability (1s windows):");
        for (host, windows) in &availability {
            let mean = windows.iter().sum::<f64>() / windows.len().max(1) as f64;
            let min = windows.iter().copied().fold(f64::INFINITY, f64::min);
            let _ = writeln!(
                out,
                "    host {host:<4} mean {mean:.4}  min {min:.4}  over {} windows",
                windows.len()
            );
        }
    }

    // The slowest trace is where the run's time went; show its whole tree.
    let slowest = forest
        .traces
        .values()
        .max_by_key(|t| (t.end_us().saturating_sub(t.start_us()), t.trace_id));
    if let Some(tree) = slowest {
        let _ = writeln!(
            out,
            "  slowest trace {:#x} ({} spans, {}):",
            tree.trace_id,
            tree.spans.len(),
            fmt_secs(tree.end_us().saturating_sub(tree.start_us()))
        );
        out.push_str(&tree.render());
        let path = tree.critical_path();
        if path.len() > 1 {
            let chain = path
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(" -> ");
            let _ = writeln!(out, "  critical path: {chain}");
        }
    }

    let violations = check_journal(events);
    if violations.is_empty() {
        let _ = writeln!(out, "  invariants: ok");
    } else {
        let _ = writeln!(out, "  invariants: {} violation(s)", violations.len());
        for v in &violations {
            let _ = writeln!(out, "    {v}");
        }
    }
    out
}

/// Line-by-line comparison of two JSONL journals — the tool to reach for
/// when a byte-identical-runs gate trips. Reports the first divergence
/// with surrounding context, or confirms the journals match.
pub fn diff_jsonl(a: &str, b: &str) -> String {
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    let common = a_lines.len().min(b_lines.len());
    let divergence = (0..common).find(|&i| a_lines[i] != b_lines[i]);
    let mut out = String::new();
    match divergence {
        None if a_lines.len() == b_lines.len() => {
            let _ = writeln!(out, "journals are identical ({} lines)", a_lines.len());
        }
        None => {
            let _ = writeln!(
                out,
                "journals agree for {common} lines, then lengths diverge: {} vs {} lines",
                a_lines.len(),
                b_lines.len()
            );
            let longer = if a_lines.len() > b_lines.len() {
                &a_lines
            } else {
                &b_lines
            };
            for line in longer.iter().skip(common).take(3) {
                let _ = writeln!(out, "  extra: {line}");
            }
        }
        Some(i) => {
            let _ = writeln!(
                out,
                "journals diverge at line {} (of {} / {})",
                i + 1,
                a_lines.len(),
                b_lines.len()
            );
            for line in &a_lines[i.saturating_sub(2)..i] {
                let _ = writeln!(out, "    both: {line}");
            }
            let _ = writeln!(out, "  first:  {}", a_lines[i]);
            let _ = writeln!(out, "  second: {}", b_lines[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn span_ids_are_prefixed_and_monotonic() {
        let g = SpanIdGen::new(DOMAIN_DEPLOYER, 7);
        let a = g.next_id();
        let b = g.next_id();
        assert_eq!(a >> 56, DOMAIN_DEPLOYER as u64);
        assert_eq!((a >> 32) & 0xFF_FFFF, 7);
        assert_eq!(b, a + 1);
        // Distinct domains/nodes never collide.
        let other = SpanIdGen::new(DOMAIN_HOST, 7);
        assert_ne!(other.next_id(), a);
    }

    #[test]
    fn ctx_round_trips_through_builder_and_jsonl() {
        let tele = Telemetry::new(16);
        let gen = SpanIdGen::new(DOMAIN_FRAMEWORK, 0);
        let root = gen.root();
        let child = gen.child(&root);
        tele.span("core.cycle", 0, 100).trace(root).emit();
        tele.event("core.analyzer.decision", 10)
            .trace(child)
            .field("algorithm", "avala")
            .emit();
        let events = parse_jsonl(&tele.export_jsonl()).unwrap();
        assert_eq!(ctx_of(&events[0]), Some(root));
        assert_eq!(ctx_of(&events[1]), Some(child));
        let forest = TraceForest::build(&events);
        let tree = &forest.traces[&root.trace_id];
        assert_eq!(tree.roots, vec![root.span_id]);
        assert_eq!(tree.spans[&root.span_id].children, vec![child.span_id]);
        assert!(forest.check().is_empty());
    }

    #[test]
    fn open_and_settle_records_merge_into_one_span() {
        let tele = Telemetry::new(16);
        let gen = SpanIdGen::new(DOMAIN_DEPLOYER, 1);
        let root = gen.root();
        let mv = gen.child(&root);
        tele.span("core.cycle", 0, 900).trace(root).emit();
        tele.event("prism.migration.move.open", 100)
            .trace(mv)
            .field("component", "comp_1")
            .emit();
        tele.span("prism.migration.move", 100, 400)
            .trace(mv)
            .field("outcome", "confirmed")
            .emit();
        let events = parse_jsonl(&tele.export_jsonl()).unwrap();
        let forest = TraceForest::build(&events);
        let tree = &forest.traces[&root.trace_id];
        let span = &tree.spans[&mv.span_id];
        assert_eq!(span.records, 2);
        assert_eq!(span.name, "prism.migration.move");
        assert_eq!(span.end_us, Some(400));
        assert!(span.has_open_marker());
        assert!(forest.check().is_empty());
    }

    #[test]
    fn check_flags_orphans_unsettled_moves_and_model_drift() {
        let tele = Telemetry::new(16);
        let gen = SpanIdGen::new(DOMAIN_FRAMEWORK, 0);
        let root = gen.root();
        tele.span("core.cycle", 0, 500)
            .trace(root)
            .field("model_matches_actual", false)
            .emit();
        // Orphan: parent never journaled.
        let ghost = TraceCtx {
            trace_id: root.trace_id,
            span_id: gen.next_id(),
            parent_id: Some(0xDEAD),
        };
        tele.event("core.recovery", 50).trace(ghost).emit();
        // Unsettled move: open marker with no settle record.
        let mv = gen.child(&root);
        tele.event("core.move.open", 60).trace(mv).emit();
        let events = parse_jsonl(&tele.export_jsonl()).unwrap();
        let violations = check_journal(&events);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("missing parent")));
        assert!(violations.iter().any(|v| v.contains("never settled")));
        assert!(violations.iter().any(|v| v.contains("model != actual")));
    }

    #[test]
    fn critical_path_follows_latest_finishing_child() {
        let tele = Telemetry::new(16);
        let gen = SpanIdGen::new(DOMAIN_FRAMEWORK, 0);
        let root = gen.root();
        let fast = gen.child(&root);
        let slow = gen.child(&root);
        let leaf = gen.child(&slow);
        tele.span("cycle", 0, 1000).trace(root).emit();
        tele.span("fast", 10, 50).trace(fast).emit();
        tele.span("slow", 10, 900).trace(slow).emit();
        tele.span("leaf", 20, 880).trace(leaf).emit();
        let events = parse_jsonl(&tele.export_jsonl()).unwrap();
        let forest = TraceForest::build(&events);
        let path: Vec<&str> = forest.traces[&root.trace_id]
            .critical_path()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(path, vec!["cycle", "slow", "leaf"]);
    }

    #[test]
    fn availability_windows_credit_downtime() {
        let tele = Telemetry::new(16);
        // Host 3 down from 1.5s to 2.5s; run ends at 4s.
        tele.event("net.host.state", 1_500_000)
            .field("host", 3u64)
            .field("up", false)
            .emit();
        tele.event("net.host.state", 2_500_000)
            .field("host", 3u64)
            .field("up", true)
            .emit();
        tele.event("run.end", 4_000_000).emit();
        let events = parse_jsonl(&tele.export_jsonl()).unwrap();
        let avail = host_availability(&events, 1_000_000);
        let windows = &avail[&3];
        assert_eq!(windows.len(), 5);
        assert!((windows[0] - 1.0).abs() < 1e-9);
        assert!((windows[1] - 0.5).abs() < 1e-9);
        assert!((windows[2] - 0.5).abs() < 1e-9);
        assert!((windows[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diff_reports_first_divergence_and_identity() {
        let a = "{\"t\":1}\n{\"t\":2}\n{\"t\":3}\n";
        let b = "{\"t\":1}\n{\"t\":9}\n{\"t\":3}\n";
        let report = diff_jsonl(a, b);
        assert!(report.contains("diverge at line 2"), "{report}");
        assert!(diff_jsonl(a, a).contains("identical"));
        let c = "{\"t\":1}\n";
        assert!(diff_jsonl(a, c).contains("lengths diverge"));
    }

    #[test]
    fn summarize_renders_tree_and_verdict() {
        let tele = Telemetry::new(32);
        let gen = SpanIdGen::new(DOMAIN_FRAMEWORK, 0);
        let root = gen.root();
        let redep = gen.child(&root);
        tele.span("core.cycle", 0, 2_000_000)
            .trace(root)
            .field("model_matches_actual", true)
            .emit();
        tele.span("core.redeployment", 100_000, 1_500_000)
            .trace(redep)
            .emit();
        let events = parse_jsonl(&tele.export_jsonl()).unwrap();
        let text = summarize(&events);
        assert!(text.contains("core.cycle"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("invariants: ok"), "{text}");
    }
}
