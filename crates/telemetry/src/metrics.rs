//! Lock-free metric instruments behind a named registry.
//!
//! Registration (name → instrument) takes a mutex; the instruments
//! themselves are `Arc`-shared atomics, so the hot path — `inc`, `add`,
//! `set`, `observe` — never locks. In the single-threaded simulator the
//! relaxed orderings are exact; under concurrency they are the usual
//! monotonic-counter semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::{Number, Value};

/// A monotonically increasing `u64`.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Bucket bounds are upper-inclusive; one extra overflow bucket catches
/// everything above the last bound. The sum is kept in an atomic `f64`
/// (compare-and-swap loop), which is exact in the single-threaded sim.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        let inner = &*self.inner;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Frozen histogram state, as produced by [`Histogram::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Approximate quantile via linear interpolation over the buckets.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return match i.checked_sub(1).and_then(|p| self.bounds.get(p)) {
                    _ if i == self.bounds.len() => *self.bounds.last().unwrap_or(&0.0),
                    Some(&lower) => (lower + self.bounds[i]) / 2.0,
                    None => self.bounds.first().copied().unwrap_or(0.0),
                };
            }
        }
        *self.bounds.last().unwrap_or(&0.0)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named home for every instrument. Lookup/registration locks briefly;
/// returned handles are lock-free clones.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<std::collections::BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name` with the given upper-inclusive bucket
    /// bounds, creating it on first use (bounds are fixed at creation).
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// All metric values as one sorted-key JSON object (counters as
    /// integers, gauges as floats, histograms as `{count, sum, buckets}`).
    pub fn export_json(&self) -> Value {
        let metrics = self.metrics.lock();
        let mut obj = std::collections::BTreeMap::new();
        for (name, metric) in metrics.iter() {
            let value = match metric {
                Metric::Counter(c) => Value::Number(Number::U(c.get())),
                Metric::Gauge(g) => Value::Number(Number::F(g.get())),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut hist = std::collections::BTreeMap::new();
                    hist.insert("count".to_owned(), Value::Number(Number::U(snap.count)));
                    hist.insert("sum".to_owned(), Value::Number(Number::F(snap.sum)));
                    hist.insert(
                        "bounds".to_owned(),
                        Value::Array(
                            snap.bounds
                                .iter()
                                .map(|&b| Value::Number(Number::F(b)))
                                .collect(),
                        ),
                    );
                    hist.insert(
                        "buckets".to_owned(),
                        Value::Array(
                            snap.buckets
                                .iter()
                                .map(|&n| Value::Number(Number::U(n)))
                                .collect(),
                        ),
                    );
                    Value::Object(hist)
                }
            };
            obj.insert(name.clone(), value);
        }
        Value::Object(obj)
    }

    /// Human-readable listing of every metric, sorted by name.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock();
        let mut out = String::new();
        if metrics.is_empty() {
            return out;
        }
        let _ = writeln!(out, "  metrics:");
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "    {name:<40} {:>12}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "    {name:<40} {:>12.4}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(
                        out,
                        "    {name:<40} count={} mean={:.2} p50={:.2} p90={:.2} p99={:.2}",
                        snap.count,
                        h.mean(),
                        snap.quantile(0.50),
                        snap.quantile(0.90),
                        snap.quantile(0.99),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(registry.counter("x").get(), 5);
        registry.gauge("g").set(2.5);
        assert_eq!(registry.gauge("g").get(), 2.5);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("x");
        registry.counter("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets, vec![2, 1, 1, 1]);
        assert!((snap.sum - 556.2).abs() < 1e-9);
        assert!(h.mean() > 100.0);
        let p50 = snap.quantile(0.5);
        assert!(p50 <= 10.0, "p50 {p50}");
    }

    #[test]
    fn export_json_is_sorted_and_typed() {
        let registry = MetricsRegistry::new();
        registry.counter("b.count").add(2);
        registry.gauge("a.value").set(1.5);
        let json = serde_json::to_string(&registry.export_json()).unwrap();
        // BTreeMap ordering puts a.value first; gauge is a float, counter an int.
        assert_eq!(json, r#"{"a.value":1.5,"b.count":2}"#);
    }
}
