//! Property-based tests on span-tree reconstruction: arbitrary interleaved
//! span open/close sequences must always rebuild into well-formed trees.

use proptest::prelude::*;
use redep_telemetry::trace::TraceForest;
use redep_telemetry::{Telemetry, TraceCtx};

/// One planned span: which trace it joins, which earlier span (within that
/// trace) parents it, how long after its parent it starts (causality: a
/// child never starts before its parent), how long it runs (`None` = never
/// settles), and a key that scrambles the emission order.
#[derive(Clone, Debug)]
struct SpanPlan {
    trace_slot: usize,
    parent_choice: usize,
    start_offset_us: u64,
    duration_us: Option<u64>,
    order_key: u64,
}

/// A resolved record ready to emit: its context plus the plan's timing.
struct Planned {
    ctx: TraceCtx,
    start_us: u64,
    end_us: Option<u64>,
    order_key: u64,
}

fn plan_strategy() -> impl Strategy<Value = Vec<SpanPlan>> {
    proptest::collection::vec(
        (
            0usize..3,
            any::<usize>(),
            0u64..1_000_000,
            proptest::option::of(0u64..1_000_000),
            any::<u64>(),
        )
            .prop_map(
                |(trace_slot, parent_choice, start_offset_us, duration_us, order_key)| SpanPlan {
                    trace_slot,
                    parent_choice,
                    start_offset_us,
                    duration_us,
                    order_key,
                },
            ),
        1..32,
    )
}

/// Resolves plans into concrete spans: unique span IDs, parents drawn from
/// earlier spans of the same trace (or none, making a root).
fn resolve(plans: &[SpanPlan]) -> Vec<Planned> {
    let mut per_trace: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 3]; // (span_id, start)
    let mut out = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let span_id = 1 + i as u64;
        let trace_id = 100 + plan.trace_slot as u64;
        let earlier = &per_trace[plan.trace_slot];
        // Choice space is `earlier.len() + 1`: the extra slot means "root".
        // A child starts at `parent start + offset`, never before it.
        let (parent_id, start_us) = match plan.parent_choice % (earlier.len() + 1) {
            0 => (None, plan.start_offset_us),
            n => {
                let (pid, pstart) = earlier[n - 1];
                (Some(pid), pstart + plan.start_offset_us)
            }
        };
        per_trace[plan.trace_slot].push((span_id, start_us));
        out.push(Planned {
            ctx: TraceCtx {
                trace_id,
                span_id,
                parent_id,
            },
            start_us,
            end_us: plan.duration_us.map(|d| start_us + d),
            order_key: plan.order_key,
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_span_records_rebuild_into_well_formed_trees(plans in plan_strategy()) {
        let spans = resolve(&plans);

        // Emit in an arbitrary interleaving, not creation order: children
        // may hit the journal before their parents, closes before opens.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].order_key, i));
        let telemetry = Telemetry::new(4096);
        for &i in &order {
            let s = &spans[i];
            match s.end_us {
                Some(end) => telemetry.span("prop.span", s.start_us, end),
                None => telemetry.event("prop.span.pending", s.start_us),
            }
            .trace(s.ctx)
            .emit();
        }

        let events = redep_telemetry::trace::parse_jsonl(&telemetry.export_jsonl()).unwrap();
        let forest = TraceForest::build(&events);

        // Every record is traced, and no span vanished or was invented.
        prop_assert_eq!(forest.traced_records, spans.len());
        prop_assert_eq!(forest.untraced_records, 0);
        let total: usize = forest.traces.values().map(|t| t.spans.len()).sum();
        prop_assert_eq!(total, spans.len());

        for s in &spans {
            let tree = forest.traces.get(&s.ctx.trace_id).expect("trace exists");
            let span = tree.spans.get(&s.ctx.span_id).expect("span exists");
            // Reconstructed timing matches the plan regardless of order.
            prop_assert_eq!(span.start_us, s.start_us);
            prop_assert_eq!(span.end_us, s.end_us);
            prop_assert_eq!(span.parent_id, s.ctx.parent_id);
            match s.ctx.parent_id {
                // Every child hangs off its live parent…
                Some(parent) => {
                    let parent_span = tree.spans.get(&parent).expect("parent exists");
                    prop_assert!(parent_span.children.contains(&s.ctx.span_id));
                }
                // …and every root is listed as one.
                None => prop_assert!(tree.roots.contains(&s.ctx.span_id)),
            }
        }

        for tree in forest.traces.values() {
            // Child lists are sorted by (start, id) — rendering and
            // critical-path walks rely on this.
            for span in tree.spans.values() {
                let keys: Vec<(u64, u64)> = span
                    .children
                    .iter()
                    .map(|id| (tree.spans[id].start_us, *id))
                    .collect();
                prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            }
            // The critical path starts at a root and follows child links.
            let path = tree.critical_path();
            if let Some(first) = path.first() {
                prop_assert!(tree.roots.contains(&first.span_id));
                for pair in path.windows(2) {
                    prop_assert!(pair[0].children.contains(&pair[1].span_id));
                }
            }
        }

        // No structural invariant fires: parents all exist, nothing is an
        // unsettled `.open` marker, no cycle record reports divergence.
        prop_assert_eq!(forest.check(), Vec::<String>::new());
    }

    #[test]
    fn unsettled_open_markers_are_flagged(start_us in 0u64..1_000_000) {
        let telemetry = Telemetry::new(64);
        telemetry
            .event("prop.move.open", start_us)
            .trace(TraceCtx::root(7))
            .emit();
        let events = redep_telemetry::trace::parse_jsonl(&telemetry.export_jsonl()).unwrap();
        let violations = TraceForest::build(&events).check();
        prop_assert_eq!(violations.len(), 1);
        prop_assert!(violations[0].contains("never settled"), "{}", violations[0]);
    }
}
