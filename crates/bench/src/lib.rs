//! # redep-bench
//!
//! The experiment harness regenerating every table and figure of the DSN'04
//! evaluation (see `DESIGN.md` for the experiment index E1–E12 and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Each experiment is a binary (`cargo run -p redep-bench --release --bin
//! exp_e3_scaling`) that prints the table/series the paper reports;
//! wall-clock-sensitive measurements additionally live in Criterion benches
//! (`cargo bench`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into every JSON report so downstream tooling can
/// detect incompatible layouts.
pub const REPORT_SCHEMA: &str = "redep-bench/v1";

/// One experiment's machine-readable report: the shared `--json` schema for
/// every `exp_*` binary.
///
/// Binaries keep printing their human tables; calling
/// [`ExpReport::emit_if_requested`] at the end additionally writes
/// `BENCH_<id>.json` when the experiment was invoked with `--json`. One
/// schema across binaries means a results dashboard needs exactly one
/// parser:
///
/// ```json
/// {"schema":"redep-bench/v1","experiment":"e11","title":"...",
///  "passed":true,"metrics":{"mean_rel_error":0.02},
///  "percentiles":{"cycle_ms":{"p50":12.0,"p90":31.0,"p99":44.0}},
///  "journal_dropped":0,"notes":["..."]}
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct ExpReport {
    /// Short experiment id, e.g. `"e11"`; names the output file.
    pub experiment: String,
    /// Human title of the experiment.
    pub title: String,
    /// Whether every assertion of the experiment held.
    pub passed: bool,
    /// Flat scalar results, keyed by metric name (sorted, so exports are
    /// deterministic).
    pub metrics: BTreeMap<String, f64>,
    /// Distribution summaries (p50/p90/p99 per sample name), for metrics
    /// where a single scalar hides the tail.
    pub percentiles: BTreeMap<String, [f64; 3]>,
    /// Telemetry events dropped because a journal overflowed its capacity
    /// during the run. A non-zero count means the journal (and anything
    /// derived from it — trace trees, invariant checks) is incomplete, so
    /// `validate_report` rejects such reports.
    pub journal_dropped: u64,
    /// Free-form remarks (tolerances used, truncations applied, …).
    pub notes: Vec<String>,
}

impl ExpReport {
    /// Creates an empty, passing report.
    pub fn new(experiment: impl Into<String>, title: impl Into<String>) -> Self {
        ExpReport {
            experiment: experiment.into(),
            title: title.into(),
            passed: true,
            metrics: BTreeMap::new(),
            percentiles: BTreeMap::new(),
            journal_dropped: 0,
            notes: Vec::new(),
        }
    }

    /// Records one scalar metric (last write wins on duplicate names).
    pub fn metric(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.insert(name.into(), value);
        self
    }

    /// Records a p50/p90/p99 summary of `samples` under `name` (nearest-rank,
    /// matching `Telemetry::summary`). A no-op on an empty sample.
    pub fn percentiles_of(&mut self, name: impl Into<String>, samples: &[f64]) -> &mut Self {
        if let Some(p) = redep_telemetry::percentiles(samples) {
            self.percentiles.insert(name.into(), p);
        }
        self
    }

    /// Accumulates the dropped-event count of a run's journal. Call once per
    /// run/cell with `telemetry.journal().dropped()`.
    pub fn add_journal_dropped(&mut self, dropped: u64) -> &mut Self {
        self.journal_dropped += dropped;
        self
    }

    /// Appends a free-form note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Sets the pass/fail verdict.
    pub fn set_passed(&mut self, passed: bool) -> &mut Self {
        self.passed = passed;
        self
    }

    /// Renders the report as a JSON value with deterministic (sorted) keys.
    pub fn to_json(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("schema".to_owned(), Value::String(REPORT_SCHEMA.to_owned()));
        obj.insert(
            "experiment".to_owned(),
            Value::String(self.experiment.clone()),
        );
        obj.insert("title".to_owned(), Value::String(self.title.clone()));
        obj.insert("passed".to_owned(), Value::Bool(self.passed));
        let metrics: BTreeMap<String, Value> = self
            .metrics
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Number(serde_json::Number::F(v))))
            .collect();
        obj.insert("metrics".to_owned(), Value::Object(metrics));
        let percentiles: BTreeMap<String, Value> = self
            .percentiles
            .iter()
            .map(|(k, &[p50, p90, p99])| {
                let mut q = BTreeMap::new();
                q.insert("p50".to_owned(), Value::Number(serde_json::Number::F(p50)));
                q.insert("p90".to_owned(), Value::Number(serde_json::Number::F(p90)));
                q.insert("p99".to_owned(), Value::Number(serde_json::Number::F(p99)));
                (k.clone(), Value::Object(q))
            })
            .collect();
        obj.insert("percentiles".to_owned(), Value::Object(percentiles));
        obj.insert(
            "journal_dropped".to_owned(),
            Value::Number(serde_json::Number::U(self.journal_dropped)),
        );
        obj.insert(
            "notes".to_owned(),
            Value::Array(self.notes.iter().cloned().map(Value::String).collect()),
        );
        Value::Object(obj)
    }

    /// Parses a report back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is not an object, carries a different
    /// `schema` tag, or misses a required key.
    pub fn from_json(value: &Value) -> Result<Self, serde::Error> {
        let missing = |key: &str| serde::Error::custom(format!("missing key {key}"));
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("report must be an object"))?;
        let schema = obj
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| missing("schema"))?;
        if schema != REPORT_SCHEMA {
            return Err(serde::Error::custom(format!(
                "unsupported schema {schema:?} (expected {REPORT_SCHEMA:?})"
            )));
        }
        let text = |key: &str| {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| missing(key))
        };
        let metrics = obj
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or_else(|| missing("metrics"))?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| serde::Error::custom(format!("metric {k} is not a number")))
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        // Optional-with-default for reports written before these fields
        // existed; the schema tag stays `redep-bench/v1`.
        let mut percentiles = BTreeMap::new();
        if let Some(p) = obj.get("percentiles") {
            let p = p
                .as_object()
                .ok_or_else(|| serde::Error::custom("percentiles must be an object"))?;
            for (name, quantiles) in p {
                let q = quantiles.as_object().ok_or_else(|| {
                    serde::Error::custom(format!("percentiles[{name}] is not an object"))
                })?;
                let get = |key: &str| {
                    q.get(key).and_then(Value::as_f64).ok_or_else(|| {
                        serde::Error::custom(format!("percentiles[{name}] misses {key}"))
                    })
                };
                percentiles.insert(name.clone(), [get("p50")?, get("p90")?, get("p99")?]);
            }
        }
        let journal_dropped = match obj.get("journal_dropped") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| serde::Error::custom("journal_dropped is not a count"))?,
        };
        let notes = obj
            .get("notes")
            .and_then(Value::as_array)
            .ok_or_else(|| missing("notes"))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| missing("notes[]"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExpReport {
            experiment: text("experiment")?,
            title: text("title")?,
            passed: obj
                .get("passed")
                .and_then(Value::as_bool)
                .ok_or_else(|| missing("passed"))?,
            metrics,
            percentiles,
            journal_dropped,
            notes,
        })
    }

    /// The file the report lands in: `BENCH_<experiment>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Writes `BENCH_<experiment>.json` into the current directory when the
    /// process was invoked with `--json`; a no-op otherwise. Returns the
    /// file name when a file was written.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be written.
    pub fn emit_if_requested(&self) -> std::io::Result<Option<String>> {
        if !std::env::args().any(|a| a == "--json") {
            return Ok(None);
        }
        let name = self.file_name();
        let json = serde_json::to_string_pretty(&self.to_json()).expect("reports always serialize");
        std::fs::write(&name, json + "\n")?;
        Ok(Some(name))
    }
}

/// Prints a titled ASCII table: experiment binaries share one look.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(title, headers, rows));
}

/// Renders a titled ASCII table to a string.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Arithmetic mean of a sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Formats a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("## demo"));
        assert!(t.contains("long-header"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(std_dev(&[1.0, 1.0, 1.0]) < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = ExpReport::new("e11", "monitor accuracy");
        report
            .metric("mean_rel_error", 0.021)
            .metric("mean_freq_error", 0.104)
            .percentiles_of("cycle_ms", &[10.0, 20.0, 30.0, 40.0])
            .add_journal_dropped(3)
            .note("frequency table truncated to 15 rows")
            .set_passed(true);
        let text = serde_json::to_string_pretty(&report.to_json()).unwrap();
        let back = ExpReport::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert!(text.contains(REPORT_SCHEMA));
        assert!(text.contains("journal_dropped"));
        assert_eq!(back.percentiles["cycle_ms"], [20.0, 40.0, 40.0]);
        assert_eq!(back.journal_dropped, 3);
        assert_eq!(report.file_name(), "BENCH_e11.json");
    }

    #[test]
    fn pre_percentile_reports_still_parse() {
        // Reports written before the percentiles/journal_dropped fields
        // existed keep the same schema tag and must keep parsing.
        let mut report = ExpReport::new("e1", "legacy");
        report.metric("x", 1.0);
        let Value::Object(mut obj) = report.to_json() else {
            panic!("reports serialize to objects")
        };
        obj.remove("percentiles");
        obj.remove("journal_dropped");
        let back = ExpReport::from_json(&Value::Object(obj)).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.journal_dropped, 0);
        assert!(back.percentiles.is_empty());
    }

    #[test]
    fn report_rejects_foreign_schemas() {
        let mut report = ExpReport::new("e1", "t");
        report.metric("x", 1.0);
        let Value::Object(mut obj) = report.to_json() else {
            panic!("reports serialize to objects")
        };
        obj.insert("schema".into(), Value::String("other/v9".into()));
        let err = ExpReport::from_json(&Value::Object(obj)).unwrap_err();
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }

    #[test]
    fn report_json_keys_are_sorted_and_deterministic() {
        let mut report = ExpReport::new("e5", "overhead");
        report
            .metric("z_overhead_pct", 3.0)
            .metric("a_throughput", 1e6);
        let a = serde_json::to_string(&report.to_json()).unwrap();
        let b = serde_json::to_string(&report.to_json()).unwrap();
        assert_eq!(a, b);
        let experiment = a.find("\"experiment\"").unwrap();
        let metrics = a.find("\"metrics\"").unwrap();
        let schema = a.find("\"schema\"").unwrap();
        assert!(experiment < metrics && metrics < schema, "{a}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(4.5678), "4.568");
        assert_eq!(fmt_f(0.12345), "0.1235");
    }
}
