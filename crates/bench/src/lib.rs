//! # redep-bench
//!
//! The experiment harness regenerating every table and figure of the DSN'04
//! evaluation (see `DESIGN.md` for the experiment index E1–E12 and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Each experiment is a binary (`cargo run -p redep-bench --release --bin
//! exp_e3_scaling`) that prints the table/series the paper reports;
//! wall-clock-sensitive measurements additionally live in Criterion benches
//! (`cargo bench`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// Prints a titled ASCII table: experiment binaries share one look.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(title, headers, rows));
}

/// Renders a titled ASCII table to a string.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Arithmetic mean of a sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Formats a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("## demo"));
        assert!(t.contains("long-header"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(std_dev(&[1.0, 1.0, 1.0]) < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(4.5678), "4.568");
        assert_eq!(fmt_f(0.12345), "0.1235");
    }
}
