//! Ablation A1: event buffering during migration (DESIGN.md §ablations).
//!
//! The paper's effectors "may also need to perform tasks such as buffering,
//! hoarding, or relaying of the exchanged events during component
//! redeployment." This ablation disables the buffer and shows application
//! events being dropped during a migration that the buffered configuration
//! survives without loss.

use redep_bench::print_table;
use redep_core::{RuntimeConfig, SystemRuntime};
use redep_model::{Deployment, DeploymentModel, HostId};
use redep_netsim::Duration;

/// A 3-host chain with one very chatty pair whose receiver we migrate.
fn system() -> (DeploymentModel, Deployment) {
    let mut m = DeploymentModel::new();
    let a = m.add_host("a").unwrap();
    let b = m.add_host("b").unwrap();
    let c = m.add_host("c").unwrap();
    for (x, y) in [(a, b), (b, c), (a, c)] {
        m.set_physical_link(x, y, |l| {
            l.set_reliability(1.0);
            l.set_bandwidth(1e6);
            l.set_delay(0.005);
        })
        .unwrap();
    }
    let talker = m.add_component("talker").unwrap();
    let listener = m.add_component("listener").unwrap();
    m.set_logical_link(talker, listener, |l| {
        l.set_frequency(200.0); // very chatty: events in flight at any instant
        l.set_event_size(64.0);
    })
    .unwrap();
    let d: Deployment = [(talker, a), (listener, b)].into_iter().collect();
    (m, d)
}

/// Runs the migration scenario; returns (buffered, replayed, undeliverable).
fn run(buffering: bool) -> (u64, u64, u64) {
    let (model, initial) = system();
    let config = RuntimeConfig {
        buffer_during_migration: buffering,
        ..RuntimeConfig::default()
    };
    let mut rt = SystemRuntime::build(&model, &initial, &config).unwrap();
    rt.run_for(Duration::from_secs_f64(5.0));

    // Move the listener b → c while 200 ev/s are in flight toward it.
    let master = rt.master().unwrap();
    rt.host_mut(master)
        .unwrap()
        .effect_redeployment([("listener".to_owned(), HostId::new(2))].into())
        .unwrap();
    rt.run_for(Duration::from_secs_f64(20.0));
    assert!(rt
        .host(master)
        .unwrap()
        .deployer()
        .unwrap()
        .status()
        .is_complete());

    let (mut buffered, mut replayed, mut undeliverable) = (0, 0, 0);
    for &h in rt.hosts() {
        let s = rt.host(h).unwrap().services().stats();
        buffered += s.events_buffered;
        replayed += s.events_replayed;
        undeliverable += s.events_undeliverable;
    }
    (buffered, replayed, undeliverable)
}

fn main() {
    let (b_buf, b_rep, b_lost) = run(true);
    let (a_buf, a_rep, a_lost) = run(false);
    print_table(
        "A1: event buffering ablation (migrate the listener of a 200 ev/s stream)",
        &["configuration", "buffered", "replayed", "dropped"],
        &[
            vec![
                "buffering on (paper)".into(),
                b_buf.to_string(),
                b_rep.to_string(),
                b_lost.to_string(),
            ],
            vec![
                "buffering off (ablated)".into(),
                a_buf.to_string(),
                a_rep.to_string(),
                a_lost.to_string(),
            ],
        ],
    );
    assert_eq!(
        b_buf, b_rep,
        "A1 FAILED: buffered events were not all replayed"
    );
    assert_eq!(b_lost, 0, "A1 FAILED: events lost despite buffering");
    assert!(
        a_lost > 0,
        "A1 FAILED: ablation lost nothing — migration too fast?"
    );
    println!(
        "\nA1 PASS: with buffering every in-flight event survives the migration \
         ({b_buf} parked and replayed); without it {a_lost} events are dropped."
    );
}
