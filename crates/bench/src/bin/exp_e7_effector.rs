//! E7 (§4.3): the effector's redeployment protocol.
//!
//! Measures the time and control traffic to effect redeployments of
//! increasing size (1…N component moves) on a running system, and verifies
//! the paper's buffering claim: application events addressed to in-flight
//! components are parked and replayed, not lost.

use redep_bench::{fmt_f, print_table};
use redep_core::{RuntimeConfig, SystemRuntime};
use redep_model::{Generator, GeneratorConfig, HostId};
use redep_netsim::Duration;
use redep_prism::PrismHost;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for moves in [1usize, 2, 4, 8, 12] {
        let system = Generator::generate(&GeneratorConfig::sized(6, 24).with_seed(4))?;
        let mut runtime =
            SystemRuntime::build(&system.model, &system.initial, &RuntimeConfig::default())?;
        runtime.run_for(Duration::from_secs_f64(5.0));

        // Build a target moving `moves` components to different hosts.
        let names = runtime.component_names().clone();
        let hosts = runtime.hosts().to_vec();
        let mut target: BTreeMap<String, HostId> = BTreeMap::new();
        for (c, h) in system.initial.iter().take(moves) {
            let dest = hosts[(h.raw() as usize + 1) % hosts.len()];
            target.insert(names[&c].clone(), dest);
        }

        let master = runtime.master().unwrap();
        let control_before: u64 = hosts
            .iter()
            .map(|&h| runtime.host(h).unwrap().services().stats().control_sent)
            .sum();
        let t0 = runtime.sim().now();
        runtime
            .host_mut(master)
            .unwrap()
            .effect_redeployment(target)?;

        // Drive until completion.
        let mut elapsed = None;
        for _ in 0..240 {
            runtime.run_for(Duration::from_millis(250));
            let done = runtime
                .host(master)
                .unwrap()
                .deployer()
                .unwrap()
                .status()
                .is_complete();
            if done {
                elapsed = Some(runtime.sim().now() - t0);
                break;
            }
        }
        let control_after: u64 = hosts
            .iter()
            .map(|&h| runtime.host(h).unwrap().services().stats().control_sent)
            .sum();

        rows.push(vec![
            moves.to_string(),
            match elapsed {
                Some(d) => format!("{:.2}", d.as_secs_f64()),
                None => "timeout".into(),
            },
            (control_after - control_before).to_string(),
            fmt_f((control_after - control_before) as f64 / moves as f64),
        ]);
        assert!(
            elapsed.is_some(),
            "E7 FAILED: redeployment of {moves} moves timed out"
        );
    }
    print_table(
        "E7a: redeployment effecting cost vs moves (6 hosts × 24 components)",
        &["moves", "effect time (s)", "control frames", "frames/move"],
        &rows,
    );

    // ---- buffering: no events lost during migration -------------------
    let system = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(9))?;
    let mut runtime =
        SystemRuntime::build(&system.model, &system.initial, &RuntimeConfig::default())?;
    runtime.run_for(Duration::from_secs_f64(5.0));
    let names = runtime.component_names().clone();
    // Move the busiest component.
    let busiest = system
        .model
        .component_ids()
        .into_iter()
        .max_by(|a, b| {
            let fa: f64 = system
                .model
                .logical_neighbors(*a)
                .iter()
                .map(|d| system.model.frequency(*a, *d))
                .sum();
            let fb: f64 = system
                .model
                .logical_neighbors(*b)
                .iter()
                .map(|d| system.model.frequency(*b, *d))
                .sum();
            fa.partial_cmp(&fb).unwrap()
        })
        .unwrap();
    let from = system.initial.host_of(busiest).unwrap();
    let dest = runtime
        .hosts()
        .iter()
        .copied()
        .find(|h| *h != from)
        .unwrap();
    let master = runtime.master().unwrap();
    runtime
        .host_mut(master)
        .unwrap()
        .effect_redeployment([(names[&busiest].clone(), dest)].into())?;
    runtime.run_for(Duration::from_secs_f64(30.0));

    let (mut buffered, mut replayed) = (0, 0);
    for &h in runtime.hosts() {
        let stats = runtime.host(h).unwrap().services().stats();
        buffered += stats.events_buffered;
        replayed += stats.events_replayed;
    }
    let landed = runtime
        .host(dest)
        .map(|host: &PrismHost| host.architecture().contains_component(&names[&busiest]))
        .unwrap_or(false);
    print_table(
        "E7b: event buffering during migration of the busiest component",
        &["metric", "value"],
        &[
            vec!["migration completed".into(), landed.to_string()],
            vec!["events buffered".into(), buffered.to_string()],
            vec!["events replayed".into(), replayed.to_string()],
        ],
    );
    assert!(landed, "E7 FAILED: migration did not complete");
    assert_eq!(buffered, replayed, "E7 FAILED: buffered events were lost");
    println!("\nE7 PASS: effecting scales with move count; buffered = replayed (no loss).");
    Ok(())
}
