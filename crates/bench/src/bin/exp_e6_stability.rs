//! E6 (§3.1/§4.3): ε-stability detection.
//!
//! "Once the monitored data is stable (i.e., the difference in the data
//! across a desired number of consecutive intervals is less than an
//! adjustable value ε)" — this experiment sweeps ε and the noise amplitude
//! of a settling reading stream and reports how many monitoring intervals
//! pass before the gauge declares stability.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_bench::print_table;
use redep_prism::StabilityGauge;

/// A reading that decays toward 0.7 with persistent measurement noise.
fn reading(interval: usize, noise: f64, rng: &mut ChaCha8Rng) -> f64 {
    let transient = 0.3 * (-(interval as f64) / 5.0).exp();
    0.7 + transient + rng.random_range(-noise..=noise.max(f64::MIN_POSITIVE))
}

fn intervals_to_stable(epsilon: f64, noise: f64, seed: u64) -> Option<usize> {
    let mut gauge = StabilityGauge::new(epsilon, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for interval in 0..200 {
        gauge.push(reading(interval, noise, &mut rng));
        if gauge.is_stable() {
            return Some(interval + 1);
        }
    }
    None
}

fn main() {
    let epsilons = [0.02, 0.05, 0.1, 0.2];
    let noises = [0.0, 0.01, 0.03, 0.08];
    let mut rows = Vec::new();
    for &noise in &noises {
        let mut cells = vec![format!("{noise}")];
        for &eps in &epsilons {
            // Median over seeds.
            let mut times: Vec<Option<usize>> =
                (0..9).map(|s| intervals_to_stable(eps, noise, s)).collect();
            times.sort();
            let cell = match times[times.len() / 2] {
                Some(t) => t.to_string(),
                None => "never".into(),
            };
            cells.push(cell);
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("noise \\ ε".to_owned())
        .chain(epsilons.iter().map(|e| format!("ε={e}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "E6: monitoring intervals until ε-stability (median of 9 runs; settling signal)",
        &headers_ref,
        &rows,
    );

    // The structural claims: looser ε stabilizes sooner; noise above ε
    // suppresses (or at least greatly delays) stability. The tight/noisy
    // combination can still fluke into 3 small consecutive diffs, so the
    // claim is statistical across seeds.
    let tight_noisy_hits = (0..9)
        .filter(|&s| intervals_to_stable(0.02, 0.08, s).is_some_and(|t| t <= 20))
        .count();
    assert!(
        tight_noisy_hits <= 2,
        "E6 FAILED: ε=0.02 stabilized quickly under noise 0.08 in {tight_noisy_hits}/9 runs"
    );
    let loose_noisy_hits = (0..9)
        .filter(|&s| intervals_to_stable(0.2, 0.08, s).is_some())
        .count();
    assert_eq!(loose_noisy_hits, 9, "E6 FAILED: ε=0.2 failed to stabilize");
    let clean_tight = intervals_to_stable(0.02, 0.0, 0).expect("clean signal settles");
    let clean_loose = intervals_to_stable(0.2, 0.0, 0).expect("clean signal settles");
    assert!(clean_loose <= clean_tight);
    println!(
        "\nE6 PASS: looser ε detects stability sooner ({clean_loose} vs {clean_tight} \
         intervals on the clean signal); noise above ε correctly suppresses reporting."
    );
}
