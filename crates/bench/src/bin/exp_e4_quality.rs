//! E4 (§5.1): solution quality of the approximative algorithms against the
//! Exact optimum on small instances — the paper's justification for using
//! Avala on large systems.

use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_bench::{fmt_f, mean, print_table, std_dev};
use redep_model::{Availability, Generator, GeneratorConfig};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEEDS: u64 = 10;
    let mut ratios: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut initial_ratios: Vec<f64> = Vec::new();

    for seed in 0..SEEDS {
        // Harder instances than the defaults: sparse, unreliable networks
        // and real memory pressure, so placement genuinely matters.
        let config = GeneratorConfig {
            reliability: redep_model::Range::new(0.1, 0.7),
            physical_density: 0.3,
            host_memory: redep_model::Range::new(40.0, 60.0),
            component_memory: redep_model::Range::new(5.0, 15.0),
            ..GeneratorConfig::sized(3, 9).with_seed(seed)
        };
        let system = Generator::generate(&config)?;
        let optimum = ExactAlgorithm::new()
            .run(
                &system.model,
                &Availability,
                system.model.constraints(),
                Some(&system.initial),
            )?
            .value;
        initial_ratios.push(
            redep_model::Objective::evaluate(&Availability, &system.model, &system.initial)
                / optimum,
        );

        let algos: Vec<(&str, Box<dyn RedeploymentAlgorithm>)> = vec![
            ("avala", Box::new(AvalaAlgorithm::new())),
            ("stochastic", Box::new(StochasticAlgorithm::new())),
            ("genetic", Box::new(GeneticAlgorithm::new())),
            ("annealing", Box::new(AnnealingAlgorithm::new())),
            ("decap", Box::new(DecApAlgorithm::new())),
        ];
        for (name, algo) in algos {
            let r = algo.run(
                &system.model,
                &Availability,
                system.model.constraints(),
                Some(&system.initial),
            )?;
            ratios.entry(name).or_default().push(r.value / optimum);
        }
    }

    let mut rows = vec![vec![
        "initial (random)".to_owned(),
        fmt_f(mean(&initial_ratios)),
        fmt_f(std_dev(&initial_ratios)),
        fmt_f(initial_ratios.iter().cloned().fold(f64::INFINITY, f64::min)),
    ]];
    for (name, rs) in &ratios {
        rows.push(vec![
            (*name).to_owned(),
            fmt_f(mean(rs)),
            fmt_f(std_dev(rs)),
            fmt_f(rs.iter().cloned().fold(f64::INFINITY, f64::min)),
        ]);
    }
    print_table(
        &format!("E4: fraction of Exact-optimal availability ({SEEDS} instances, 3 hosts × 9 components)"),
        &["algorithm", "mean", "std", "worst"],
        &rows,
    );

    for (name, rs) in &ratios {
        assert!(
            mean(rs) > mean(&initial_ratios),
            "E4 FAILED: {name} no better than random"
        );
        // Centralized bodies must be near-optimal; DecAp sees only
        // awareness-bounded views, so beating the initial deployment is its
        // contract (§5.2), not near-optimality.
        if *name != "decap" {
            assert!(
                mean(rs) > 0.85,
                "E4 FAILED: {name} mean ratio {:.3}",
                mean(rs)
            );
        }
    }
    println!(
        "\nE4 PASS: every centralized approximative algorithm achieves >85% of \
         optimal on average; DecAp (partial knowledge) still beats the random \
         initial deployment."
    );
    Ok(())
}
