//! E11 (Figure 8): a monitored Prism-MW system.
//!
//! Event-frequency monitors and ping-based reliability probes run alongside
//! a live workload; the experiment compares their estimates against the
//! simulator's configured ground truth.

use redep_bench::{fmt_f, mean, print_table, ExpReport};
use redep_core::{RuntimeConfig, SystemRuntime};
use redep_model::{Generator, GeneratorConfig};
use redep_netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(6))?;
    let mut runtime =
        SystemRuntime::build(&system.model, &system.initial, &RuntimeConfig::default())?;
    runtime.run_for(Duration::from_secs_f64(120.0));

    let master = runtime.master().unwrap();
    let snapshots = runtime
        .host(master)
        .and_then(|h| h.deployer())
        .map(|d| d.snapshots().clone())
        .unwrap_or_default();
    assert_eq!(
        snapshots.len(),
        runtime.hosts().len(),
        "E11 FAILED: not every host reported"
    );

    // ---- reliability estimates ------------------------------------------
    let mut rows = Vec::new();
    let mut rel_errors = Vec::new();
    for (host, snap) in &snapshots {
        for (peer, estimate) in &snap.reliabilities {
            if let Some(link) = runtime.sim().topology().link(*host, *peer) {
                let truth = link.spec.reliability;
                rel_errors.push((estimate - truth).abs());
                rows.push(vec![
                    format!("{host}–{peer}"),
                    fmt_f(*estimate),
                    fmt_f(truth),
                    fmt_f((estimate - truth).abs()),
                ]);
            }
        }
    }
    print_table(
        "E11a: ping-based reliability estimates vs ground truth",
        &["link", "monitored", "truth", "abs error"],
        &rows,
    );

    // ---- frequency estimates ---------------------------------------------
    let names = runtime.component_names().clone();
    let mut rows = Vec::new();
    let mut freq_errors = Vec::new();
    for snap in snapshots.values() {
        for ((a, b), freq) in &snap.frequencies {
            let ids: Vec<_> = names
                .iter()
                .filter(|(_, n)| *n == a || *n == b)
                .map(|(id, _)| *id)
                .collect();
            if ids.len() == 2 {
                let truth = system.model.frequency(ids[0], ids[1]);
                if truth > 0.0 {
                    freq_errors.push((freq - truth).abs() / truth);
                    rows.push(vec![
                        format!("{a}↔{b}"),
                        fmt_f(*freq),
                        fmt_f(truth),
                        format!("{:.1}%", 100.0 * (freq - truth).abs() / truth),
                    ]);
                }
            }
        }
    }
    rows.truncate(15); // the full list is long; the summary below covers all
    print_table(
        "E11b: interaction-frequency estimates vs model parameters (first 15)",
        &["pair", "monitored (ev/s)", "truth (ev/s)", "rel error"],
        &rows,
    );

    let mean_rel_err = mean(&rel_errors);
    let mean_freq_err = mean(&freq_errors);
    print_table(
        "E11 summary",
        &["estimate", "mean error"],
        &[
            vec!["link reliability (absolute)".into(), fmt_f(mean_rel_err)],
            vec![
                "interaction frequency (relative)".into(),
                format!("{:.1}%", 100.0 * mean_freq_err),
            ],
        ],
    );
    let passed = mean_rel_err < 0.15 && mean_freq_err < 0.25;
    let mut report = ExpReport::new(
        "e11",
        "monitored estimates vs simulator ground truth (Figure 8)",
    );
    report
        .metric("mean_reliability_abs_error", mean_rel_err)
        .metric("mean_frequency_rel_error", mean_freq_err)
        .metric("hosts_reporting", snapshots.len() as f64)
        .metric("reliability_links_compared", rel_errors.len() as f64)
        .metric("frequency_pairs_compared", freq_errors.len() as f64)
        .note("tolerances: reliability abs error < 0.15, frequency rel error < 0.25")
        .set_passed(passed);
    if let Some(file) = report.emit_if_requested()? {
        println!("\nwrote {file}");
    }

    assert!(
        mean_rel_err < 0.15,
        "E11 FAILED: reliability error {mean_rel_err:.3}"
    );
    assert!(
        mean_freq_err < 0.25,
        "E11 FAILED: frequency error {mean_freq_err:.3}"
    );
    println!("\nE11 PASS: monitors recover the system parameters within tolerance.");
    Ok(())
}
