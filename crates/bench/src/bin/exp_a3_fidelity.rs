//! Analysis A3: how faithful is the model's availability estimate?
//!
//! The objectives use the paper's *direct-link* formulation (interactions
//! between non-adjacent hosts count as unavailable), while the middleware
//! relays frames multi-hop. This experiment quantifies the gap on the
//! disaster-relief scenario by comparing three numbers:
//!
//! 1. the direct-link model estimate (what the algorithms optimize),
//! 2. a path-aware estimate using [`redep_model::DeploymentModel::best_path`]
//!    (per-hop reliabilities compounded),
//! 3. the measured end-to-end delivery ratio of the running system.

use redep_bench::{fmt_f, print_table};
use redep_core::{RuntimeConfig, Scenario, ScenarioConfig, SystemRuntime};
use redep_model::{Availability, Objective, PathAwareAvailability};
use redep_netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for seed in [7u64, 13, 21] {
        let s = Scenario::build(&ScenarioConfig {
            commanders: 3,
            troops: 6,
            seed,
        })?;
        let direct = Availability.evaluate(&s.model, &s.initial);
        let path_aware = PathAwareAvailability.evaluate(&s.model, &s.initial);

        let mut rt = SystemRuntime::build(&s.model, &s.initial, &RuntimeConfig::default())?;
        rt.run_for(Duration::from_secs_f64(120.0));
        let measured = rt.measured_availability();

        gaps.push(((direct - measured).abs(), (path_aware - measured).abs()));
        rows.push(vec![
            format!("seed {seed}"),
            fmt_f(direct),
            fmt_f(path_aware),
            fmt_f(measured),
        ]);
    }
    print_table(
        "A3: availability estimates vs ground truth (disaster-relief scenario)",
        &[
            "system",
            "direct-link (objective)",
            "path-aware",
            "measured",
        ],
        &rows,
    );

    let mean_direct_gap: f64 = gaps.iter().map(|g| g.0).sum::<f64>() / gaps.len() as f64;
    let mean_path_gap: f64 = gaps.iter().map(|g| g.1).sum::<f64>() / gaps.len() as f64;
    println!(
        "\nmean |estimate − measured|: direct-link {mean_direct_gap:.4}, \
         path-aware {mean_path_gap:.4}"
    );
    assert!(
        mean_path_gap <= mean_direct_gap + 0.02,
        "A3 FAILED: the path-aware estimate should not be farther from truth"
    );
    println!(
        "A3 PASS: the direct-link objective is a conservative lower bound; \
         the path-aware query tracks the running system more closely."
    );
    Ok(())
}
