//! Validates a checked-in `BENCH_*.json` against the `ExpReport` schema.
//!
//! Usage: `validate_report <file.json> [<file.json> …]`
//!
//! For each file, parses the JSON, round-trips it through
//! [`ExpReport::from_json`] (which enforces the `redep-bench/v1` schema and
//! field types), and requires `passed: true`. Exits non-zero on the first
//! violation — CI runs this right after regenerating a report to catch both
//! schema drift and silently-failing experiments.
//!
//! Report-specific gates: a *full-mode* pipeline report (one carrying the
//! `speedup_vs_seed_single_shard` metric) must clear the sharded-engine
//! acceptance — ≥ 4× the seed single-shard baseline at 256×1024 — and must
//! include the 1024×8192 sharded scale row. Quick-mode (CI smoke) reports
//! omit those metrics and skip the gate.

use redep_bench::ExpReport;

/// Enforces the sharded-pipeline acceptance on full-mode pipeline reports.
fn check_pipeline_gates(file: &str, report: &ExpReport) -> Result<(), String> {
    let Some(&speedup) = report.metrics.get("speedup_vs_seed_single_shard") else {
        return Ok(()); // quick-mode report: nothing to gate
    };
    if speedup < 4.0 {
        return Err(format!(
            "{file}: sharded speedup {speedup:.2}× is below the 4× \
             seed-single-shard gate"
        ));
    }
    if !report
        .metrics
        .keys()
        .any(|k| k.starts_with("events_per_sec_1024x8192_sharded"))
    {
        return Err(format!(
            "{file}: full-mode pipeline report is missing the 1024x8192 \
             sharded scale row"
        ));
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        return Err("usage: validate_report <BENCH_*.json> …".into());
    }
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let value: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{file}: invalid JSON: {e}"))?;
        let report =
            ExpReport::from_json(&value).map_err(|e| format!("{file}: schema violation: {e}"))?;
        if !report.passed {
            return Err(format!(
                "{file}: experiment '{}' reports passed=false",
                report.experiment
            )
            .into());
        }
        if report.journal_dropped > 0 {
            return Err(format!(
                "{file}: experiment '{}' overflowed its telemetry journal \
                 ({} events dropped) — derived metrics and traces are incomplete",
                report.experiment, report.journal_dropped
            )
            .into());
        }
        if report.experiment == "pipeline" {
            check_pipeline_gates(file, &report)?;
        }
        println!(
            "{file}: ok (experiment '{}', {} metrics)",
            report.experiment,
            report.metrics.len()
        );
    }
    Ok(())
}
