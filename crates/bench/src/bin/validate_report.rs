//! Validates a checked-in `BENCH_*.json` against the `ExpReport` schema.
//!
//! Usage: `validate_report <file.json> [<file.json> …]`
//!
//! For each file, parses the JSON, round-trips it through
//! [`ExpReport::from_json`] (which enforces the `redep-bench/v1` schema and
//! field types), and requires `passed: true`. Exits non-zero on the first
//! violation — CI runs this right after regenerating a report to catch both
//! schema drift and silently-failing experiments.

use redep_bench::ExpReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        return Err("usage: validate_report <BENCH_*.json> …".into());
    }
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let value: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{file}: invalid JSON: {e}"))?;
        let report =
            ExpReport::from_json(&value).map_err(|e| format!("{file}: schema violation: {e}"))?;
        if !report.passed {
            return Err(format!(
                "{file}: experiment '{}' reports passed=false",
                report.experiment
            )
            .into());
        }
        if report.journal_dropped > 0 {
            return Err(format!(
                "{file}: experiment '{}' overflowed its telemetry journal \
                 ({} events dropped) — derived metrics and traces are incomplete",
                report.experiment, report.journal_dropped
            )
            .into());
        }
        println!(
            "{file}: ok (experiment '{}', {} metrics)",
            report.experiment,
            report.metrics.len()
        );
    }
    Ok(())
}
