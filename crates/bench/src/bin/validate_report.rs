//! Validates a checked-in `BENCH_*.json` against the `ExpReport` schema.
//!
//! Usage: `validate_report <file.json> [<file.json> …]`
//!
//! For each file, parses the JSON, round-trips it through
//! [`ExpReport::from_json`] (which enforces the `redep-bench/v1` schema and
//! field types), and requires `passed: true`. Exits non-zero on the first
//! violation — CI runs this right after regenerating a report to catch both
//! schema drift and silently-failing experiments.
//!
//! Report-specific gates: a *full-mode* pipeline report (one carrying the
//! `speedup_vs_seed_single_shard` metric) must clear the sharded-engine
//! acceptance — ≥ 4× the seed single-shard baseline at 256×1024 — and must
//! include the 1024×8192 sharded scale row. A full-mode *algorithms* report
//! (one carrying `e3d.avala.20x160.speedup_vs_flat`) must clear the
//! hierarchical-engine acceptance — ≥ 10× evals/s over the flat path for
//! avala and decap, all four hierarchical algorithms completing 200×2000,
//! and the 1000×10000 scale row. A full-mode *faults* report (one carrying
//! `.avala.` cells) must show every `*.decap.final` availability ≥ 0.90 —
//! the partial-view starvation fix the hierarchical auctions exist for.
//! Quick-mode (CI smoke) reports omit those metrics and skip the gates —
//! except the durable-recovery gate, which fires on *any* faults report
//! carrying crash cells: every `crash.<algo>` cell must show ≥ 1 recovery
//! report, ≥ 1 verdict, and `recover.state_equiv == 1.0`.

use redep_bench::ExpReport;

/// Enforces the hierarchical-engine acceptance on full-mode algorithm
/// reports.
fn check_algorithms_gates(file: &str, report: &ExpReport) -> Result<(), String> {
    if !report
        .metrics
        .contains_key("e3d.avala.20x160.speedup_vs_flat")
    {
        return Ok(()); // quick-mode report: nothing to gate
    }
    for algo in ["avala", "decap"] {
        let key = format!("e3d.{algo}.20x160.speedup_vs_flat");
        let speedup = report
            .metrics
            .get(&key)
            .copied()
            .ok_or_else(|| format!("{file}: full-mode algorithms report is missing {key}"))?;
        if speedup < 10.0 {
            return Err(format!(
                "{file}: hierarchical {algo} speedup {speedup:.2}× is below \
                 the 10× flat-path gate"
            ));
        }
    }
    for algo in ["avala", "decap", "stochastic", "annealing"] {
        let key = format!("e3d.{algo}.200x2000.evals_per_sec");
        if !report.metrics.contains_key(&key) {
            return Err(format!(
                "{file}: full-mode algorithms report is missing the 200x2000 \
                 row for {algo} ({key})"
            ));
        }
    }
    if !report
        .metrics
        .contains_key("e3d.avala.1000x10000.wall_secs")
    {
        return Err(format!(
            "{file}: full-mode algorithms report is missing the 1000x10000 \
             scale row"
        ));
    }
    Ok(())
}

/// Enforces the decentralized-recovery acceptance on full-mode fault
/// reports: no fault class may leave DecAp below 0.90 final availability.
fn check_faults_gates(file: &str, report: &ExpReport) -> Result<(), String> {
    check_crash_recovery_gates(file, report)?;
    if !report.metrics.keys().any(|k| k.contains(".avala.")) {
        return Ok(()); // quick-mode report: nothing to gate
    }
    for (key, &value) in &report.metrics {
        if key.ends_with(".decap.final") && value < 0.90 {
            return Err(format!(
                "{file}: {key} = {value:.4} is below the 0.90 final-availability \
                 gate for hierarchical DecAp"
            ));
        }
    }
    Ok(())
}

/// Enforces the durable-recovery acceptance on any fault report carrying
/// crash cells (quick-mode smoke included): each crash cell must show at
/// least one durable recovery (checkpoint + journal replay), at least one
/// per-operation verdict, and a perfect state-equivalence self-check.
fn check_crash_recovery_gates(file: &str, report: &ExpReport) -> Result<(), String> {
    let algos: Vec<String> = report
        .metrics
        .keys()
        .filter_map(|k| {
            k.strip_prefix("crash.")
                .and_then(|rest| rest.strip_suffix(".final"))
                .map(str::to_owned)
        })
        .collect();
    for algo in &algos {
        for (suffix, minimum) in [
            ("recover.reports", 1.0),
            ("recover.verdicts", 1.0),
            ("recover.state_equiv", 1.0),
        ] {
            let key = format!("crash.{algo}.{suffix}");
            let value = report
                .metrics
                .get(&key)
                .copied()
                .ok_or_else(|| format!("{file}: crash cell is missing {key}"))?;
            if value < minimum {
                return Err(format!(
                    "{file}: {key} = {value} is below the durable-recovery \
                     gate ({minimum})"
                ));
            }
        }
    }
    Ok(())
}

/// Enforces the sharded-pipeline acceptance on full-mode pipeline reports.
fn check_pipeline_gates(file: &str, report: &ExpReport) -> Result<(), String> {
    let Some(&speedup) = report.metrics.get("speedup_vs_seed_single_shard") else {
        return Ok(()); // quick-mode report: nothing to gate
    };
    if speedup < 4.0 {
        return Err(format!(
            "{file}: sharded speedup {speedup:.2}× is below the 4× \
             seed-single-shard gate"
        ));
    }
    if !report
        .metrics
        .keys()
        .any(|k| k.starts_with("events_per_sec_1024x8192_sharded"))
    {
        return Err(format!(
            "{file}: full-mode pipeline report is missing the 1024x8192 \
             sharded scale row"
        ));
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        return Err("usage: validate_report <BENCH_*.json> …".into());
    }
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let value: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{file}: invalid JSON: {e}"))?;
        let report =
            ExpReport::from_json(&value).map_err(|e| format!("{file}: schema violation: {e}"))?;
        if !report.passed {
            return Err(format!(
                "{file}: experiment '{}' reports passed=false",
                report.experiment
            )
            .into());
        }
        if report.journal_dropped > 0 {
            return Err(format!(
                "{file}: experiment '{}' overflowed its telemetry journal \
                 ({} events dropped) — derived metrics and traces are incomplete",
                report.experiment, report.journal_dropped
            )
            .into());
        }
        if report.experiment == "pipeline" {
            check_pipeline_gates(file, &report)?;
        }
        if report.experiment == "algorithms" {
            check_algorithms_gates(file, &report)?;
        }
        if report.experiment == "faults" {
            check_faults_gates(file, &report)?;
        }
        println!(
            "{file}: ok (experiment '{}', {} metrics)",
            report.experiment,
            report.metrics.len()
        );
    }
    Ok(())
}
