//! E1 (Figures 1–2, §5.1): the centralized instantiation end to end.
//!
//! The disaster-relief system runs on simulated hardware; slave monitors
//! report to the master; the centralized analyzer selects algorithms and the
//! master effector migrates components. The table shows availability
//! improving from the naive deployment to the framework-chosen one.

use redep_bench::{fmt_f, print_table};
use redep_core::{AnalyzerConfig, CentralizedFramework, RuntimeConfig, Scenario, ScenarioConfig};
use redep_model::{Availability, Latency, Objective};
use redep_netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(&ScenarioConfig {
        commanders: 3,
        troops: 6,
        seed: 7,
    })?;
    let initial_availability = Availability.evaluate(&scenario.model, &scenario.initial);
    let initial_latency = Latency::new().evaluate(&scenario.model, &scenario.initial);

    let mut fw = CentralizedFramework::new(
        scenario.model,
        scenario.initial,
        &RuntimeConfig::default(),
        AnalyzerConfig::default(),
    )?;

    let mut rows = Vec::new();
    let mut redeployments = 0;
    for cycle in 1..=10 {
        let report = fw.cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )?;
        let (algo, verdict, est_av) = match &report.decision {
            None => ("-".to_owned(), "monitoring".to_owned(), "-".to_owned()),
            Some(d) => {
                if d.accepted {
                    redeployments += 1;
                }
                (
                    d.algorithm.clone(),
                    if d.accepted { "ACCEPTED" } else { "rejected" }.to_owned(),
                    fmt_f(d.record.availability),
                )
            }
        };
        rows.push(vec![
            cycle.to_string(),
            format!("{:.0}", report.time_secs),
            format!(
                "{}/{}",
                report.snapshots_applied,
                fw.runtime().hosts().len()
            ),
            algo,
            est_av,
            verdict,
            fmt_f(report.measured_availability),
        ]);
    }
    print_table(
        "E1: centralized framework cycles (disaster-relief scenario)",
        &[
            "cycle",
            "t(s)",
            "reports",
            "algorithm",
            "est.avail",
            "decision",
            "measured",
        ],
        &rows,
    );

    let model = fw.desi().system().model();
    let deployment = fw.desi().system().deployment();
    let final_availability = Availability.evaluate(model, deployment);
    let final_latency = Latency::new().evaluate(model, deployment);
    print_table(
        "E1 summary: before vs after",
        &["metric", "initial", "final"],
        &[
            vec![
                "availability (model)".into(),
                fmt_f(initial_availability),
                fmt_f(final_availability),
            ],
            vec![
                "latency (model)".into(),
                fmt_f(initial_latency),
                fmt_f(final_latency),
            ],
            vec![
                "measured availability".into(),
                "-".into(),
                fmt_f(fw.runtime().measured_availability()),
            ],
            vec![
                "redeployments".into(),
                "0".into(),
                redeployments.to_string(),
            ],
        ],
    );
    assert!(
        final_availability >= initial_availability,
        "E1 FAILED: availability regressed"
    );
    println!("\nE1 PASS: framework improved availability {initial_availability:.4} → {final_availability:.4}");
    Ok(())
}
