//! E6-pipeline: runtime hot-path throughput of the event pipeline.
//!
//! Drives a full `SystemRuntime` (Prism hosts, workload components, the
//! network simulator) at three scales — 8×32, 64×256, 256×1024
//! hosts×components — and measures the wall-clock event rate of the whole
//! pipeline: routing through interned-symbol adjacency, `Arc`-shared
//! payloads, the binary wire codec, and the calendar-queue scheduler.
//!
//! Each scale runs twice: once on the **fast path** (the default binary
//! codec) and once on the **legacy path** (`codec=json`, the serde_json
//! wire format this PR replaced), so the report carries both numbers and
//! their ratio. Events are counted by the middleware's own
//! `pipeline.events.routed` counter and wire volume by
//! `pipeline.codec.bytes`, giving events/second and bytes/event per cell.
//!
//! On top of the single-queue cells, the **sharded** conservative-PDES
//! engine ([`redep_core::ShardedRuntime`]) is measured at 256×1024 (4
//! shards) and 1024×8192 (8 shards). Its gate compares the sharded
//! aggregate rate against the *seed* single-shard baseline checked into
//! `BENCH_pipeline.json` before this change (60,930 ev/s at 256×1024); the
//! same-run measured single-shard rate is also reported for transparency —
//! see EXPERIMENTS.md for the methodology.
//!
//! `--quick` runs only the 8×32 cells (the CI smoke configuration);
//! `--json` writes `BENCH_pipeline.json` in the shared `ExpReport` schema.
//! `--shard-smoke` skips the benchmark and instead runs the sharded engine
//! at two thread counts, asserting the merged journals are byte-identical
//! (the CI determinism gate).

use redep_bench::{print_table, ExpReport};
use redep_core::{RuntimeConfig, ShardedRuntime, SystemRuntime};
use redep_model::{Generator, GeneratorConfig};
use redep_netsim::SimTime;
use redep_prism::{set_wire_codec, WireCodec};
use redep_telemetry::Telemetry;
use std::time::Instant;

/// The single-shard 256×1024 fast-path rate recorded in the checked-in
/// `BENCH_pipeline.json` before the sharded engine landed — the fixed
/// reference for the sharded speedup gate.
const SEED_BASELINE_256X1024: f64 = 60_930.0;

/// One measured cell: a (scale, codec) pair.
struct Sample {
    /// Events routed through component handlers (`pipeline.events.routed`).
    events: u64,
    /// Bytes produced by the wire codec (`pipeline.codec.bytes`).
    bytes: u64,
    /// Wall-clock seconds for the simulated horizon.
    wall_secs: f64,
    /// Per-chunk throughput samples (events/s over each horizon slice),
    /// feeding the report's p50/p90/p99 summary.
    chunk_rates: Vec<f64>,
    /// Journal-overflow count (always 0 with a disabled handle; recorded so
    /// `validate_report` can gate on it).
    journal_dropped: u64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
    fn bytes_per_event(&self) -> f64 {
        self.bytes as f64 / self.events.max(1) as f64
    }
}

/// Builds a runtime at the given scale and runs it for `horizon` simulated
/// seconds under `codec`, reading the pipeline counters afterwards.
fn run_cell(
    hosts: usize,
    comps: usize,
    horizon: f64,
    codec: WireCodec,
) -> Result<Sample, Box<dyn std::error::Error>> {
    set_wire_codec(codec);
    let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(11))?;
    let runtime_config = RuntimeConfig {
        seed: 1,
        ..RuntimeConfig::default()
    };
    let mut rt = SystemRuntime::build(&system.model, &system.initial, &runtime_config)?;
    // A disabled handle journals nothing (we are measuring the hot path,
    // not recording it) but its counters still count.
    let telemetry = Telemetry::disabled();
    rt.set_telemetry(telemetry.clone());
    let routed = telemetry.metrics().counter("pipeline.events.routed");
    let bytes = telemetry.metrics().counter("pipeline.codec.bytes");

    // Run the horizon in ten equal slices, sampling the event rate of each
    // — the slice rates feed the percentile summary, exposing throughput
    // jitter that the aggregate mean hides.
    const CHUNKS: u32 = 10;
    let mut chunk_rates = Vec::with_capacity(CHUNKS as usize);
    let mut prev_events = 0u64;
    let started = Instant::now();
    for chunk in 1..=CHUNKS {
        let chunk_started = Instant::now();
        rt.sim_mut().run_until(SimTime::from_secs_f64(
            horizon * f64::from(chunk) / f64::from(CHUNKS),
        ));
        let chunk_secs = chunk_started.elapsed().as_secs_f64();
        let now_events = routed.get();
        chunk_rates.push((now_events - prev_events) as f64 / chunk_secs.max(1e-9));
        prev_events = now_events;
    }
    let wall_secs = started.elapsed().as_secs_f64();
    set_wire_codec(WireCodec::Binary);
    Ok(Sample {
        events: routed.get(),
        bytes: bytes.get(),
        wall_secs,
        chunk_rates,
        journal_dropped: telemetry.journal().dropped(),
    })
}

/// Builds a *sharded* runtime at the given scale and runs it for `horizon`
/// simulated seconds on the binary codec, reading the same pipeline
/// counters summed across the per-shard telemetry handles.
fn run_sharded_cell(
    hosts: usize,
    comps: usize,
    horizon: f64,
    shards: usize,
    threads: usize,
) -> Result<Sample, Box<dyn std::error::Error>> {
    set_wire_codec(WireCodec::Binary);
    let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(11))?;
    let runtime_config = RuntimeConfig {
        seed: 1,
        ..RuntimeConfig::default()
    };
    let mut rt = ShardedRuntime::build(&system.model, &system.initial, &runtime_config, shards)?;
    let handles: Vec<Telemetry> = (0..shards).map(|_| Telemetry::disabled()).collect();
    rt.set_telemetry(handles.clone());
    let routed: Vec<_> = handles
        .iter()
        .map(|t| t.metrics().counter("pipeline.events.routed"))
        .collect();
    let bytes: Vec<_> = handles
        .iter()
        .map(|t| t.metrics().counter("pipeline.codec.bytes"))
        .collect();
    let total =
        |counters: &[redep_telemetry::Counter]| counters.iter().map(|c| c.get()).sum::<u64>();

    const CHUNKS: u32 = 10;
    let mut chunk_rates = Vec::with_capacity(CHUNKS as usize);
    let mut prev_events = 0u64;
    let started = Instant::now();
    for chunk in 1..=CHUNKS {
        let chunk_started = Instant::now();
        rt.sim_mut().run_until(
            SimTime::from_secs_f64(horizon * f64::from(chunk) / f64::from(CHUNKS)),
            threads,
        );
        let chunk_secs = chunk_started.elapsed().as_secs_f64();
        let now_events = total(&routed);
        chunk_rates.push((now_events - prev_events) as f64 / chunk_secs.max(1e-9));
        prev_events = now_events;
    }
    let wall_secs = started.elapsed().as_secs_f64();
    Ok(Sample {
        events: total(&routed),
        bytes: total(&bytes),
        wall_secs,
        chunk_rates,
        journal_dropped: handles.iter().map(|t| t.journal().dropped()).sum(),
    })
}

/// The CI determinism gate: runs the sharded pipeline at two thread counts
/// with journaling enabled and asserts the merged exports are
/// byte-identical.
fn shard_smoke() -> Result<(), Box<dyn std::error::Error>> {
    set_wire_codec(WireCodec::Binary);
    const SHARDS: usize = 4;
    let run = |threads: usize| -> Result<String, Box<dyn std::error::Error>> {
        let system = Generator::generate(&GeneratorConfig::sized(16, 64).with_seed(11))?;
        let runtime_config = RuntimeConfig {
            seed: 1,
            ..RuntimeConfig::default()
        };
        let mut rt =
            ShardedRuntime::build(&system.model, &system.initial, &runtime_config, SHARDS)?;
        // Large journals: the byte-equality contract only holds when no
        // shard overflows its ring.
        let handles: Vec<Telemetry> = (0..SHARDS).map(|_| Telemetry::new(1 << 20)).collect();
        rt.set_telemetry(handles.clone());
        rt.run_for(redep_netsim::Duration::from_secs_f64(5.0), threads);
        for t in &handles {
            assert_eq!(
                t.journal().dropped(),
                0,
                "journal overflowed; raise capacity"
            );
        }
        Ok(rt.sim().export_merged_jsonl())
    };
    let single = run(1)?;
    let multi = run(4)?;
    assert!(!single.is_empty(), "shard smoke produced an empty journal");
    assert_eq!(
        single, multi,
        "shard smoke FAILED: journals diverged between 1 and 4 threads"
    );
    println!(
        "shard smoke PASS: {} journal bytes identical across 1 and 4 threads ({SHARDS} shards).",
        single.len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--shard-smoke") {
        return shard_smoke();
    }
    let quick = std::env::args().any(|a| a == "--quick");
    // (hosts, components, simulated horizon): larger systems carry more
    // traffic per simulated second, so the horizon shrinks with scale to
    // keep each cell's wall time in the seconds range.
    let scales: &[(usize, usize, f64)] = if quick {
        &[(8, 32, 10.0)]
    } else {
        &[(8, 32, 10.0), (64, 256, 5.0), (256, 1024, 1.0)]
    };

    let mut report = ExpReport::new(
        "pipeline",
        "E6-pipeline: hot-path throughput, binary codec vs legacy JSON",
    );
    report.note(if quick {
        "quick mode: 8x32 only, 10 s simulated horizon"
    } else {
        "full mode: 8x32 / 64x256 / 256x1024, horizons 10/5/1 s simulated"
    });

    let mut rows = Vec::new();
    let mut gate_speedup = f64::INFINITY;
    let mut measured_single_256 = None;
    for &(hosts, comps, horizon) in scales {
        let fast = run_cell(hosts, comps, horizon, WireCodec::Binary)?;
        if (hosts, comps) == (256, 1024) {
            measured_single_256 = Some(fast.events_per_sec());
        }
        let legacy = run_cell(hosts, comps, horizon, WireCodec::Json)?;
        assert!(
            fast.events > 0 && legacy.events > 0,
            "{hosts}x{comps}: pipeline routed no events"
        );
        let speedup = fast.events_per_sec() / legacy.events_per_sec().max(1e-9);
        // The acceptance gate reads the 64x256 cell in full mode; quick
        // mode gates on its only cell.
        if quick || (hosts, comps) == (64, 256) {
            gate_speedup = gate_speedup.min(speedup);
        }
        let key = format!("{hosts}x{comps}");
        report.metric(format!("events_per_sec_{key}_fast"), fast.events_per_sec());
        report.metric(
            format!("events_per_sec_{key}_legacy"),
            legacy.events_per_sec(),
        );
        report.metric(
            format!("bytes_per_event_{key}_fast"),
            fast.bytes_per_event(),
        );
        report.metric(
            format!("bytes_per_event_{key}_legacy"),
            legacy.bytes_per_event(),
        );
        report.metric(format!("speedup_{key}"), speedup);
        report.percentiles_of(
            format!("chunk_events_per_sec_{key}_fast"),
            &fast.chunk_rates,
        );
        report.add_journal_dropped(fast.journal_dropped + legacy.journal_dropped);
        rows.push(vec![
            key,
            format!("{:.0}", fast.events_per_sec()),
            format!("{:.0}", legacy.events_per_sec()),
            format!("{speedup:.1}×"),
            format!("{:.0}", fast.bytes_per_event()),
            format!("{:.0}", legacy.bytes_per_event()),
        ]);
    }
    print_table(
        "E6-pipeline: wall-clock throughput (events routed per second)",
        &[
            "k×n",
            "binary ev/s",
            "json ev/s",
            "speedup",
            "B/ev bin",
            "B/ev json",
        ],
        &rows,
    );

    // Sharded conservative-PDES cells: quick mode sanity-checks a tiny
    // configuration; full mode measures 256×1024 on 4 shards (the gated
    // cell) and the 1024×8192 scale point on 8 shards.
    let sharded_scales: &[(usize, usize, f64, usize)] = if quick {
        &[(8, 32, 10.0, 2)]
    } else {
        &[(256, 1024, 1.0, 4), (1024, 8192, 0.25, 8)]
    };
    let mut sharded_rows = Vec::new();
    let mut sharded_gate = f64::INFINITY;
    for &(hosts, comps, horizon, shards) in sharded_scales {
        // Never oversubscribe: worker threads beyond the machine's cores only
        // add barrier wake-ups per window round. Results are byte-identical
        // at any thread count (the shard-smoke gate), so the thread count is
        // purely an execution detail.
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1)
            .min(shards);
        let sample = run_sharded_cell(hosts, comps, horizon, shards, threads)?;
        assert!(
            sample.events > 0,
            "{hosts}x{comps} sharded: pipeline routed no events"
        );
        let key = format!("{hosts}x{comps}");
        report.metric(
            format!("events_per_sec_{key}_sharded{shards}"),
            sample.events_per_sec(),
        );
        report.percentiles_of(
            format!("chunk_events_per_sec_{key}_sharded{shards}"),
            &sample.chunk_rates,
        );
        report.add_journal_dropped(sample.journal_dropped);
        let mut vs_seed = String::from("-");
        if (hosts, comps) == (256, 1024) {
            // The sharded gate: aggregate rate vs the seed single-shard
            // baseline (fixed), with the same-run measured single-shard
            // ratio reported alongside for transparency.
            let speedup_seed = sample.events_per_sec() / SEED_BASELINE_256X1024;
            report.metric("speedup_vs_seed_single_shard", speedup_seed);
            sharded_gate = sharded_gate.min(speedup_seed);
            vs_seed = format!("{speedup_seed:.1}×");
            if let Some(measured) = measured_single_256 {
                report.metric(
                    "speedup_vs_measured_single_shard",
                    sample.events_per_sec() / measured.max(1e-9),
                );
            }
        }
        sharded_rows.push(vec![
            key,
            format!("{shards}"),
            format!("{:.0}", sample.events_per_sec()),
            vs_seed,
        ]);
    }
    print_table(
        "E6-pipeline: sharded conservative-PDES throughput",
        &["k×n", "shards", "ev/s", "vs seed 1-shard"],
        &sharded_rows,
    );

    // Acceptance: the binary fast path must clear the legacy JSON path by
    // 3× at the 64×256 scale (quick mode only sanity-checks its one cell,
    // since CI machines vary), and in full mode the sharded engine must
    // clear 4× the seed single-shard baseline at 256×1024.
    let threshold = if quick { 1.0 } else { 3.0 };
    let sharded_threshold = 4.0;
    let sharded_pass = quick || sharded_gate >= sharded_threshold;
    report.set_passed(gate_speedup >= threshold && sharded_pass);
    report.note(format!(
        "acceptance: fast path ≥{threshold}× legacy at the gated scale \
         (observed {gate_speedup:.1}×)"
    ));
    if !quick {
        report.note(format!(
            "acceptance: sharded ≥{sharded_threshold}× the seed single-shard baseline \
             ({SEED_BASELINE_256X1024:.0} ev/s) at 256x1024 (observed {sharded_gate:.1}×)"
        ));
    }
    assert!(
        gate_speedup >= threshold,
        "pipeline FAILED: speedup {gate_speedup:.1}× below the {threshold}× gate"
    );
    assert!(
        sharded_pass,
        "pipeline FAILED: sharded speedup {sharded_gate:.1}× below the {sharded_threshold}× gate"
    );
    if let Some(file) = report.emit_if_requested()? {
        println!("\nwrote {file}");
    }
    println!("\nE6-pipeline PASS: binary fast path {gate_speedup:.1}× the legacy JSON path.");
    Ok(())
}
