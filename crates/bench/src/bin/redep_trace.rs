//! Trace-analysis CLI over run journals (`Telemetry::export_jsonl` output).
//!
//! ```text
//! redep-trace summarize <journal.jsonl> …   span trees, critical paths, phase stats
//! redep-trace check     <journal.jsonl> …   invariant check; exit 1 on violation
//! redep-trace diff      <a.jsonl> <b.jsonl> phase-latency deltas between two runs
//! ```
//!
//! `summarize` reconstructs every trace in the journal into a span tree and
//! prints per-cycle critical paths, phase latency breakdowns, and windowed
//! per-host availability. `check` runs the structural invariants (every child
//! has a live parent, every opened move settles, no cycle ends with the model
//! diverged from the actual deployment) and exits non-zero when any journal
//! violates one — CI runs it over the fault-campaign journals. `diff` compares
//! phase totals across two journals, for spotting latency regressions between
//! runs or algorithm variants.

use redep_telemetry::trace::{check_journal, diff_jsonl, parse_jsonl, summarize};
use std::io::Write;

const USAGE: &str = "usage: redep-trace <summarize|check|diff> <journal.jsonl> …\n\
                     \x20 summarize <file> …   reconstruct span trees and report latency stats\n\
                     \x20 check     <file> …   run trace invariants; exit 1 on any violation\n\
                     \x20 diff      <a> <b>    compare phase latency totals between two journals";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// Prints to stdout, exiting quietly when the reader went away — so
/// `redep-trace summarize run.jsonl | head` doesn't panic on the closed
/// pipe.
fn out(text: std::fmt::Arguments<'_>) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, files) = args.split_first().ok_or(USAGE)?;
    match cmd.as_str() {
        "summarize" => {
            if files.is_empty() {
                return Err(USAGE.into());
            }
            for file in files {
                let events = parse_jsonl(&read(file)?).map_err(|e| format!("{file}: {e}"))?;
                out(format_args!("== {file} =="));
                out(format_args!("{}", summarize(&events)));
            }
            Ok(())
        }
        "check" => {
            if files.is_empty() {
                return Err(USAGE.into());
            }
            let mut violations = 0usize;
            for file in files {
                let events = parse_jsonl(&read(file)?).map_err(|e| format!("{file}: {e}"))?;
                let problems = check_journal(&events);
                if problems.is_empty() {
                    out(format_args!("{file}: ok ({} records)", events.len()));
                } else {
                    for problem in &problems {
                        eprintln!("{file}: {problem}");
                    }
                    violations += problems.len();
                }
            }
            if violations > 0 {
                Err(format!("{violations} invariant violation(s)"))
            } else {
                Ok(())
            }
        }
        "diff" => {
            let [a, b] = files else {
                return Err(USAGE.into());
            };
            out(format_args!("{}", diff_jsonl(&read(a)?, &read(b)?)));
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
}

fn main() {
    if let Err(message) = run() {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
