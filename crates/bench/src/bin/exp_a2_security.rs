//! Extension A2 (§6 future work, implemented): improving **security** by
//! redeployment.
//!
//! "In our future work we will focus on improving system characteristics
//! beyond availability and latency, such as security…" Link security is the
//! paper's example of an architect-supplied (non-monitorable) parameter; the
//! same algorithm bodies maximize it unchanged — variation point 1 at work.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_algorithms::{AvalaAlgorithm, ExactAlgorithm, RedeploymentAlgorithm};
use redep_bench::{fmt_f, mean, print_table};
use redep_model::{
    keys, Availability, Composite, Generator, GeneratorConfig, LinkSecurity, Objective,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEEDS: u64 = 6;
    let mut sec_before = Vec::new();
    let mut sec_after = Vec::new();
    let mut avail_joint = Vec::new();
    let mut sec_joint = Vec::new();

    for seed in 0..SEEDS {
        let mut system = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(seed))?;
        // The architect annotates each link with a security level — user
        // input, never monitored.
        let mut rng = ChaCha8Rng::seed_from_u64(900 + seed);
        let pairs: Vec<_> = system.model.physical_links().map(|l| l.ends()).collect();
        for p in pairs {
            let sec = rng.random_range(0.1..1.0);
            system.model.set_physical_link(p.lo(), p.hi(), |l| {
                l.params_mut().set(keys::LINK_SECURITY, sec);
            })?;
        }

        sec_before.push(LinkSecurity.evaluate(&system.model, &system.initial));
        let secured = ExactAlgorithm::new().run(
            &system.model,
            &LinkSecurity,
            system.model.constraints(),
            Some(&system.initial),
        )?;
        sec_after.push(secured.value);

        // Joint objective: 50/50 availability + security via the composite.
        let joint = Composite::new()
            .with("availability", Availability, 0.5)
            .with("security", LinkSecurity, 0.5);
        let r = AvalaAlgorithm::new().run(
            &system.model,
            &joint,
            system.model.constraints(),
            Some(&system.initial),
        )?;
        avail_joint.push(Availability.evaluate(&system.model, &r.deployment));
        sec_joint.push(LinkSecurity.evaluate(&system.model, &r.deployment));
    }

    print_table(
        &format!(
            "A2: security as the objective (mean of {SEEDS} systems, 4 hosts × 10 components)"
        ),
        &["configuration", "security", "availability"],
        &[
            vec![
                "initial (random)".into(),
                fmt_f(mean(&sec_before)),
                "-".into(),
            ],
            vec![
                "exact, maximize security".into(),
                fmt_f(mean(&sec_after)),
                "-".into(),
            ],
            vec![
                "avala, 50/50 composite".into(),
                fmt_f(mean(&sec_joint)),
                fmt_f(mean(&avail_joint)),
            ],
        ],
    );

    assert!(
        mean(&sec_after) > mean(&sec_before) + 0.05,
        "A2 FAILED: security did not improve ({:.3} -> {:.3})",
        mean(&sec_before),
        mean(&sec_after)
    );
    println!(
        "\nA2 PASS: redeployment raises interaction-weighted security \
         {:.4} → {:.4}; the composite balances it against availability.",
        mean(&sec_before),
        mean(&sec_after)
    );
    Ok(())
}
