//! E8 (§5.1): the analyzer's decision policy.
//!
//! * Algorithm selection by architecture size and availability-profile
//!   stability (Exact for small+stable, Avala for large+stable, Stochastic
//!   while unstable);
//! * the latency guard, which "disallows the results of the algorithms to
//!   take effect" when they would significantly increase latency.

use redep_algorithms::{AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm};
use redep_bench::print_table;
use redep_core::{AnalyzerConfig, CentralizedAnalyzer};
use redep_desi::DeSi;
use redep_model::{Availability, GeneratorConfig};

fn desi(hosts: usize, comps: usize, seed: u64) -> DeSi {
    let mut d = DeSi::generate(&GeneratorConfig::sized(hosts, comps).with_seed(seed)).unwrap();
    d.container_mut().register(ExactAlgorithm::new());
    d.container_mut().register(AvalaAlgorithm::new());
    d.container_mut().register(StochasticAlgorithm::new());
    d
}

fn analyzer(stable: bool) -> CentralizedAnalyzer {
    let mut a = CentralizedAnalyzer::new(AnalyzerConfig::default());
    if stable {
        for i in 0..4 {
            a.observe(i as f64, 0.70);
        }
    } else {
        for (i, v) in [0.9, 0.3, 0.8, 0.2].into_iter().enumerate() {
            a.observe(i as f64, v);
        }
    }
    a
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- selection policy grid ---------------------------------------
    let mut rows = Vec::new();
    for (label, hosts, comps) in [("small (3×7)", 3, 7), ("large (8×40)", 8, 40)] {
        for stable in [true, false] {
            let d = desi(hosts, comps, 5);
            let a = analyzer(stable);
            rows.push(vec![
                label.to_owned(),
                if stable { "stable" } else { "unstable" }.to_owned(),
                a.select_algorithm(d.system().model()).to_owned(),
            ]);
        }
    }
    print_table(
        "E8a: algorithm selection by size × stability",
        &["architecture", "availability profile", "selected algorithm"],
        &rows,
    );
    assert_eq!(rows[0][2], "exact");
    assert_eq!(rows[1][2], "stochastic");
    assert_eq!(rows[2][2], "avala");
    assert_eq!(rows[3][2], "stochastic");

    // ---- latency guard --------------------------------------------------
    // A genuine conflict: the reliable path is slow, the fast path is flaky.
    // The current deployment uses the fast/flaky link; the availability
    // optimum uses the slow/reliable one and therefore raises latency.
    let conflicted = || -> Result<DeSi, Box<dyn std::error::Error>> {
        use redep_model::{Deployment, DeploymentModel};
        let mut model = DeploymentModel::new();
        let a = model.add_host("a")?;
        let b = model.add_host("b")?;
        let c = model.add_host("c")?;
        model.set_physical_link(a, b, |l| {
            l.set_reliability(0.95);
            l.set_delay(2.0); // reliable but slow
            l.set_bandwidth(1_000.0);
        })?;
        model.set_physical_link(a, c, |l| {
            l.set_reliability(0.5);
            l.set_delay(0.001); // fast but flaky
            l.set_bandwidth(1_000_000.0);
        })?;
        let x = model.add_component("x")?;
        let y = model.add_component("y")?;
        model.set_logical_link(x, y, |l| l.set_frequency(5.0))?;
        // x stays at a; y may not join it (separate devices).
        use redep_model::Constraint;
        use std::collections::BTreeSet;
        model.constraints_mut().add(Constraint::PinnedTo {
            component: x,
            hosts: BTreeSet::from([a]),
        });
        model.constraints_mut().add(Constraint::Separated {
            components: BTreeSet::from([x, y]),
        });
        let current: Deployment = [(x, a), (y, c)].into_iter().collect();
        let mut d = DeSi::new(model, current);
        d.container_mut().register(ExactAlgorithm::new());
        d.container_mut().register(AvalaAlgorithm::new());
        d.container_mut().register(StochasticAlgorithm::new());
        Ok(d)
    };
    let mut rows = Vec::new();
    for (label, guard, slack) in [
        ("permissive (+1000%, slack 5s)", 10.0, 5.0),
        ("strict (+25%, slack 0.1s)", 0.25, 0.1),
    ] {
        let mut d = conflicted()?;
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig {
            latency_guard: guard,
            latency_slack: slack,
            min_gain: 0.01,
            ..AnalyzerConfig::default()
        });
        for i in 0..4 {
            a.observe(i as f64, 0.5);
        }
        let decision = a.analyze(&mut d, &Availability)?;
        rows.push(vec![
            label.to_owned(),
            decision.algorithm.clone(),
            format!(
                "{:.3} → {:.3}",
                decision.current_availability, decision.record.availability
            ),
            format!(
                "{:.3} → {:.3}",
                decision.current_latency, decision.record.latency
            ),
            decision.accepted.to_string(),
        ]);
    }
    print_table(
        "E8b: the latency guard on an availability-optimal proposal",
        &["guard", "algorithm", "availability", "latency", "accepted"],
        &rows,
    );
    assert_eq!(rows[0][4], "true");
    assert_eq!(rows[1][4], "false");
    println!("\nE8 PASS: selection follows the §5.1 policy; the latency guard vetoes latency regressions.");
    Ok(())
}
