//! E3 (§5.1 complexity claims): running-time and work scaling.
//!
//! * Exact is O(kⁿ): feasible only for very small systems (the paper says
//!   ~5 hosts / ~15 components); its evaluation count equals the pruned
//!   search-space size and explodes visibly in the table.
//! * Stochastic is O(n²) per iteration, Avala O(n³), DecAp O(k·n³): all
//!   remain fast far beyond Exact's reach.

use redep_algorithms::annealing::AnnealingConfig;
use redep_algorithms::genetic::GeneticConfig;
use redep_algorithms::{
    AlgoResult, AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm,
    GeneticAlgorithm, HierarchicalConfig, MonitoringExchange, RedeploymentAlgorithm,
    StochasticAlgorithm,
};
use redep_bench::{print_table, ExpReport};
use redep_model::{Availability, Generator, GeneratorConfig, Objective, Uncompiled};
use std::time::Instant;

/// E3d generator config: beyond ~100 hosts the default densities produce
/// quadratically many links, which measures the generator, not the
/// algorithms. Cap the expected degree at ~16 on both layers (the spanning
/// tree keeps the network connected regardless).
fn sparse(hosts: usize, comps: usize, seed: u64) -> GeneratorConfig {
    let mut cfg = GeneratorConfig::sized(hosts, comps).with_seed(seed);
    cfg.physical_density = cfg.physical_density.min(16.0 / hosts as f64);
    cfg.logical_density = cfg.logical_density.min(16.0 / comps as f64);
    // The default memory ranges assume ~3 components per host (≈30%
    // utilization); denser ratios would make packing infeasible, so scale
    // host memory to keep utilization constant.
    let ratio = comps as f64 / hosts.max(1) as f64;
    if ratio > 3.0 {
        let f = ratio / 3.0;
        cfg.host_memory = redep_model::Range::new(80.0 * f, 120.0 * f);
    }
    cfg
}

/// The four hierarchical variants under test, freshly configured.
fn hier_algos(hcfg: HierarchicalConfig) -> Vec<(&'static str, Box<dyn RedeploymentAlgorithm>)> {
    vec![
        (
            "avala",
            Box::new(AvalaAlgorithm::new().with_hierarchy(hcfg)),
        ),
        (
            "decap",
            Box::new(
                DecApAlgorithm::new()
                    .with_hierarchy(hcfg)
                    .with_exchange(MonitoringExchange::Gossip { hops: 1 }),
            ),
        ),
        (
            "stochastic",
            Box::new(StochasticAlgorithm::with_config(20, 0).with_hierarchy(hcfg)),
        ),
        (
            "annealing",
            Box::new(
                AnnealingAlgorithm::with_config(AnnealingConfig {
                    iterations: 2_000,
                    ..AnnealingConfig::default()
                })
                .with_hierarchy(hcfg),
            ),
        ),
    ]
}

/// Deployment scorings per second: full and delta evaluations both price a
/// complete deployment, so their sum over wall time is the uniform E3d
/// throughput metric for flat and hierarchical paths alike.
fn scorings_per_sec(r: &AlgoResult, secs: f64) -> f64 {
    (r.full_evaluations + r.delta_evaluations) as f64 / secs.max(1e-9)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut report = ExpReport::new(
        "algorithms",
        "E3: algorithm scaling and compiled-core speedup",
    );
    if quick {
        run_e3d(&mut report, true)?;
        report.note("quick mode: E3d 200x2000 avala-h only");
        if let Some(file) = report.emit_if_requested()? {
            println!("\nwrote {file}");
        }
        println!("\nE3 quick PASS: hierarchical avala completed 200x2000.");
        return Ok(());
    }
    // --- Exact's wall: k^n growth -------------------------------------
    let mut rows = Vec::new();
    for (hosts, comps) in [
        (2, 6),
        (2, 10),
        (3, 8),
        (3, 10),
        (4, 8),
        (4, 10),
        (5, 15),
        (8, 40),
    ] {
        let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(1))?;
        let space = ExactAlgorithm::search_space(&system.model);
        let started = Instant::now();
        let outcome = ExactAlgorithm::with_budget(5_000_000).run(
            &system.model,
            &Availability,
            system.model.constraints(),
            Some(&system.initial),
        );
        let elapsed = started.elapsed();
        let (evals, status) = match &outcome {
            Ok(r) => {
                report.metric(
                    format!("e3a.exact.{hosts}x{comps}.evals_per_sec"),
                    r.evaluations as f64 / elapsed.as_secs_f64().max(1e-9),
                );
                (r.evaluations.to_string(), format!("{:.1?}", elapsed))
            }
            Err(e) => ("-".into(), format!("refused: {e}")),
        };
        rows.push(vec![
            format!("{hosts}×{comps}"),
            format!("{space:e}"),
            evals,
            status,
        ]);
    }
    print_table(
        "E3a: Exact algorithm — O(kⁿ) search space (budget 5e6 evaluations)",
        &["k×n", "k^n", "evaluated", "time / refusal"],
        &rows,
    );

    // --- Approximative algorithms scale to large systems ----------------
    let mut rows = Vec::new();
    for (hosts, comps) in [(4, 16), (8, 40), (12, 80), (16, 120), (20, 160)] {
        let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(2))?;
        let mut cells = vec![format!("{hosts}×{comps}")];
        let algos: Vec<(&str, Box<dyn RedeploymentAlgorithm>)> = vec![
            (
                "stochastic",
                Box::new(StochasticAlgorithm::with_config(20, 0)),
            ),
            ("avala", Box::new(AvalaAlgorithm::new())),
            ("decap", Box::new(DecApAlgorithm::new())),
        ];
        for (name, algo) in algos {
            let started = Instant::now();
            let r = algo.run(
                &system.model,
                &Availability,
                system.model.constraints(),
                Some(&system.initial),
            )?;
            let elapsed = started.elapsed();
            report.metric(
                format!("e3b.{name}.{hosts}x{comps}.evals_per_sec"),
                r.evaluations as f64 / elapsed.as_secs_f64().max(1e-9),
            );
            cells.push(format!("{:.1?} ({:.3})", elapsed, r.value));
        }
        rows.push(cells);
    }
    print_table(
        "E3b: approximative algorithms — time (achieved availability)",
        &["k×n", "stochastic (20 iter)", "avala", "decap"],
        &rows,
    );

    // --- Compiled evaluation core vs the naive path ---------------------
    // The two mutation-driven searches the compiled core targets, on the
    // acceptance-size instance (8 hosts × 32 components). `Uncompiled`
    // hides `Objective::compiled` so the same body pays a from-scratch
    // `evaluate` per proposal instead of an O(deg) delta.
    let system = Generator::generate(&GeneratorConfig::sized(8, 32).with_seed(3))?;
    let annealing = AnnealingAlgorithm::with_config(AnnealingConfig {
        iterations: 2_000,
        ..AnnealingConfig::default()
    });
    let genetic = GeneticAlgorithm::with_config(GeneticConfig {
        generations: 20,
        ..GeneticConfig::default()
    });
    let searches: Vec<(&str, &dyn RedeploymentAlgorithm)> =
        vec![("annealing", &annealing), ("genetic", &genetic)];
    let mut rows = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for (name, algo) in searches {
        let time_of = |objective: &dyn Objective| -> Result<(f64, f64, u64, u64), Box<dyn std::error::Error>> {
            // Median-of-5 wall time for stability outside Criterion.
            let mut times = Vec::new();
            let mut last = None;
            for _ in 0..5 {
                let started = Instant::now();
                let r = algo.run(
                    &system.model,
                    objective,
                    system.model.constraints(),
                    Some(&system.initial),
                )?;
                times.push(started.elapsed().as_secs_f64());
                last = Some(r);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let r = last.expect("five runs");
            Ok((times[2], r.value, r.full_evaluations, r.delta_evaluations))
        };
        let (fast, fast_value, full, delta) = time_of(&Availability)?;
        let (slow, slow_value, _, _) = time_of(&Uncompiled(&Availability))?;
        assert!(
            (fast_value - slow_value).abs() <= 1e-12,
            "{name}: compiled and naive paths disagree"
        );
        let speedup = slow / fast.max(1e-9);
        min_speedup = min_speedup.min(speedup);
        report.metric(format!("e3c.{name}.8x32.compiled_secs"), fast);
        report.metric(format!("e3c.{name}.8x32.naive_secs"), slow);
        report.metric(format!("e3c.{name}.8x32.speedup"), speedup);
        report.metric(format!("e3c.{name}.8x32.delta_evals"), delta as f64);
        report.metric(format!("e3c.{name}.8x32.full_evals"), full as f64);
        rows.push(vec![
            name.to_owned(),
            format!("{:.1}ms", fast * 1e3),
            format!("{:.1}ms", slow * 1e3),
            format!("{speedup:.1}×"),
            format!("{delta}/{full}"),
        ]);
    }
    print_table(
        "E3c: compiled delta scoring vs naive re-evaluation (8×32, median of 5)",
        &["search", "compiled", "naive", "speedup", "delta/full evals"],
        &rows,
    );
    report.note(format!(
        "e3c acceptance: compiled annealing+genetic must be ≥5× the naive path \
         on 8×32 (worst observed {min_speedup:.1}×)"
    ));

    let hier_speedup = run_e3d(&mut report, false)?;
    report.set_passed(min_speedup >= 5.0 && hier_speedup >= 10.0);
    report.note(format!(
        "e3d acceptance: hierarchical avala+decap must price deployments ≥10× \
         faster than the flat path on 20×160 (worst observed {hier_speedup:.1}×); \
         throughput counts full+delta scorings uniformly on both paths"
    ));

    if let Some(file) = report.emit_if_requested()? {
        println!("\nwrote {file}");
    }
    println!(
        "\nE3 PASS: Exact explodes past ~10⁶ placements while the \
         approximative algorithms handle 20×160 in milliseconds-to-seconds; \
         the compiled core runs the mutation searches {min_speedup:.1}×+ faster \
         and the hierarchical engine reaches 1000×10000."
    );
    Ok(())
}

/// E3d: the hierarchical placement engine. Returns the worst observed
/// avala/decap hierarchical-vs-flat throughput ratio at 20×160 (the
/// acceptance gate); `quick` runs only the 200×2000 avala-h cell.
fn run_e3d(report: &mut ExpReport, quick: bool) -> Result<f64, Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let hcfg = HierarchicalConfig {
        threads,
        ..HierarchicalConfig::default()
    };

    // --- 200×2000: every hierarchical algorithm completes ---------------
    let system = Generator::generate(&sparse(200, 2000, 5))?;
    let mut rows = Vec::new();
    for (name, algo) in hier_algos(hcfg) {
        if quick && name != "avala" {
            continue;
        }
        let started = Instant::now();
        let r = algo.run(
            &system.model,
            &Availability,
            system.model.constraints(),
            Some(&system.initial),
        )?;
        let elapsed = started.elapsed().as_secs_f64();
        report.metric(
            format!("e3d.{name}.200x2000.evals_per_sec"),
            scorings_per_sec(&r, elapsed),
        );
        report.metric(format!("e3d.{name}.200x2000.wall_ms"), elapsed * 1e3);
        report.metric(format!("e3d.{name}.200x2000.value"), r.value);
        rows.push(vec![
            r.algorithm.clone(),
            format!("{:.0}ms", elapsed * 1e3),
            format!("{:.3}", r.value),
            r.hierarchy_clusters.to_string(),
            r.pruned_evaluations.to_string(),
        ]);
    }
    print_table(
        "E3d: hierarchical engine at 200×2000 — super-node decomposition",
        &[
            "algorithm",
            "wall",
            "value",
            "clusters",
            "pruned candidates",
        ],
        &rows,
    );
    if quick {
        return Ok(f64::INFINITY);
    }

    // --- 20×160: hierarchical vs flat throughput (the ≥10× gate) --------
    let system = Generator::generate(&GeneratorConfig::sized(20, 160).with_seed(2))?;
    let flat_algos: Vec<(&str, Box<dyn RedeploymentAlgorithm>)> = vec![
        ("avala", Box::new(AvalaAlgorithm::new())),
        ("decap", Box::new(DecApAlgorithm::new())),
        (
            "stochastic",
            Box::new(StochasticAlgorithm::with_config(20, 0)),
        ),
        (
            "annealing",
            Box::new(AnnealingAlgorithm::with_config(AnnealingConfig {
                iterations: 2_000,
                ..AnnealingConfig::default()
            })),
        ),
    ];
    let mut rows = Vec::new();
    let mut gate_speedup = f64::INFINITY;
    for ((name, flat), (_, hier)) in flat_algos.into_iter().zip(hier_algos(hcfg)) {
        let time_of = |algo: &dyn RedeploymentAlgorithm| -> Result<(f64, AlgoResult), Box<dyn std::error::Error>> {
            // Median-of-5 wall time for stability outside Criterion.
            let mut times = Vec::new();
            let mut last = None;
            for _ in 0..5 {
                let started = Instant::now();
                let r = algo.run(
                    &system.model,
                    &Availability,
                    system.model.constraints(),
                    Some(&system.initial),
                )?;
                times.push(started.elapsed().as_secs_f64());
                last = Some(r);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            Ok((times[2], last.expect("five runs")))
        };
        let (flat_secs, flat_r) = time_of(flat.as_ref())?;
        let (hier_secs, hier_r) = time_of(hier.as_ref())?;
        let flat_rate = scorings_per_sec(&flat_r, flat_secs);
        let hier_rate = scorings_per_sec(&hier_r, hier_secs);
        let speedup = hier_rate / flat_rate.max(1e-9);
        if name == "avala" || name == "decap" {
            gate_speedup = gate_speedup.min(speedup);
        }
        report.metric(format!("e3d.{name}.20x160.flat_evals_per_sec"), flat_rate);
        report.metric(format!("e3d.{name}.20x160.hier_evals_per_sec"), hier_rate);
        report.metric(format!("e3d.{name}.20x160.speedup_vs_flat"), speedup);
        report.metric(format!("e3d.{name}.20x160.flat_wall_ms"), flat_secs * 1e3);
        report.metric(format!("e3d.{name}.20x160.hier_wall_ms"), hier_secs * 1e3);
        rows.push(vec![
            name.to_owned(),
            format!("{:.1}ms ({:.3})", flat_secs * 1e3, flat_r.value),
            format!("{:.1}ms ({:.3})", hier_secs * 1e3, hier_r.value),
            format!("{:.0}/s vs {:.0}/s", hier_rate, flat_rate),
            format!("{speedup:.1}×"),
        ]);
    }
    print_table(
        "E3d: hierarchical vs flat at 20×160 — scorings/s (median of 5)",
        &[
            "algorithm",
            "flat (value)",
            "hier (value)",
            "throughput",
            "speedup",
        ],
        &rows,
    );

    // --- 1000×10000: the scale row ---------------------------------------
    let system = Generator::generate(&sparse(1000, 10_000, 6))?;
    let algo = AvalaAlgorithm::new().with_hierarchy(hcfg);
    let started = Instant::now();
    let r = algo.run(
        &system.model,
        &Availability,
        system.model.constraints(),
        Some(&system.initial),
    )?;
    let elapsed = started.elapsed().as_secs_f64();
    report.metric("e3d.avala.1000x10000.wall_secs", elapsed);
    report.metric(
        "e3d.avala.1000x10000.evals_per_sec",
        scorings_per_sec(&r, elapsed),
    );
    report.metric("e3d.avala.1000x10000.value", r.value);
    print_table(
        "E3d: scale row — 1000 hosts × 10000 components (avala-h)",
        &["wall", "value", "clusters", "pruned candidates"],
        &[vec![
            format!("{elapsed:.1}s"),
            format!("{:.3}", r.value),
            r.hierarchy_clusters.to_string(),
            r.pruned_evaluations.to_string(),
        ]],
    );

    Ok(gate_speedup)
}
