//! E3 (§5.1 complexity claims): running-time and work scaling.
//!
//! * Exact is O(kⁿ): feasible only for very small systems (the paper says
//!   ~5 hosts / ~15 components); its evaluation count equals the pruned
//!   search-space size and explodes visibly in the table.
//! * Stochastic is O(n²) per iteration, Avala O(n³), DecAp O(k·n³): all
//!   remain fast far beyond Exact's reach.

use redep_algorithms::annealing::AnnealingConfig;
use redep_algorithms::genetic::GeneticConfig;
use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_bench::{print_table, ExpReport};
use redep_model::{Availability, Generator, GeneratorConfig, Objective, Uncompiled};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut report = ExpReport::new(
        "algorithms",
        "E3: algorithm scaling and compiled-core speedup",
    );
    // --- Exact's wall: k^n growth -------------------------------------
    let mut rows = Vec::new();
    for (hosts, comps) in [
        (2, 6),
        (2, 10),
        (3, 8),
        (3, 10),
        (4, 8),
        (4, 10),
        (5, 15),
        (8, 40),
    ] {
        let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(1))?;
        let space = ExactAlgorithm::search_space(&system.model);
        let started = Instant::now();
        let outcome = ExactAlgorithm::with_budget(5_000_000).run(
            &system.model,
            &Availability,
            system.model.constraints(),
            Some(&system.initial),
        );
        let elapsed = started.elapsed();
        let (evals, status) = match &outcome {
            Ok(r) => {
                report.metric(
                    format!("e3a.exact.{hosts}x{comps}.evals_per_sec"),
                    r.evaluations as f64 / elapsed.as_secs_f64().max(1e-9),
                );
                (r.evaluations.to_string(), format!("{:.1?}", elapsed))
            }
            Err(e) => ("-".into(), format!("refused: {e}")),
        };
        rows.push(vec![
            format!("{hosts}×{comps}"),
            format!("{space:e}"),
            evals,
            status,
        ]);
    }
    print_table(
        "E3a: Exact algorithm — O(kⁿ) search space (budget 5e6 evaluations)",
        &["k×n", "k^n", "evaluated", "time / refusal"],
        &rows,
    );

    // --- Approximative algorithms scale to large systems ----------------
    let mut rows = Vec::new();
    for (hosts, comps) in [(4, 16), (8, 40), (12, 80), (16, 120), (20, 160)] {
        let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(2))?;
        let mut cells = vec![format!("{hosts}×{comps}")];
        let algos: Vec<(&str, Box<dyn RedeploymentAlgorithm>)> = vec![
            (
                "stochastic",
                Box::new(StochasticAlgorithm::with_config(20, 0)),
            ),
            ("avala", Box::new(AvalaAlgorithm::new())),
            ("decap", Box::new(DecApAlgorithm::new())),
        ];
        for (name, algo) in algos {
            let started = Instant::now();
            let r = algo.run(
                &system.model,
                &Availability,
                system.model.constraints(),
                Some(&system.initial),
            )?;
            let elapsed = started.elapsed();
            report.metric(
                format!("e3b.{name}.{hosts}x{comps}.evals_per_sec"),
                r.evaluations as f64 / elapsed.as_secs_f64().max(1e-9),
            );
            cells.push(format!("{:.1?} ({:.3})", elapsed, r.value));
        }
        rows.push(cells);
    }
    print_table(
        "E3b: approximative algorithms — time (achieved availability)",
        &["k×n", "stochastic (20 iter)", "avala", "decap"],
        &rows,
    );

    // --- Compiled evaluation core vs the naive path ---------------------
    // The two mutation-driven searches the compiled core targets, on the
    // acceptance-size instance (8 hosts × 32 components). `Uncompiled`
    // hides `Objective::compiled` so the same body pays a from-scratch
    // `evaluate` per proposal instead of an O(deg) delta.
    let system = Generator::generate(&GeneratorConfig::sized(8, 32).with_seed(3))?;
    let annealing = AnnealingAlgorithm::with_config(AnnealingConfig {
        iterations: 2_000,
        ..AnnealingConfig::default()
    });
    let genetic = GeneticAlgorithm::with_config(GeneticConfig {
        generations: 20,
        ..GeneticConfig::default()
    });
    let searches: Vec<(&str, &dyn RedeploymentAlgorithm)> =
        vec![("annealing", &annealing), ("genetic", &genetic)];
    let mut rows = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for (name, algo) in searches {
        let time_of = |objective: &dyn Objective| -> Result<(f64, f64, u64, u64), Box<dyn std::error::Error>> {
            // Median-of-5 wall time for stability outside Criterion.
            let mut times = Vec::new();
            let mut last = None;
            for _ in 0..5 {
                let started = Instant::now();
                let r = algo.run(
                    &system.model,
                    objective,
                    system.model.constraints(),
                    Some(&system.initial),
                )?;
                times.push(started.elapsed().as_secs_f64());
                last = Some(r);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let r = last.expect("five runs");
            Ok((times[2], r.value, r.full_evaluations, r.delta_evaluations))
        };
        let (fast, fast_value, full, delta) = time_of(&Availability)?;
        let (slow, slow_value, _, _) = time_of(&Uncompiled(&Availability))?;
        assert!(
            (fast_value - slow_value).abs() <= 1e-12,
            "{name}: compiled and naive paths disagree"
        );
        let speedup = slow / fast.max(1e-9);
        min_speedup = min_speedup.min(speedup);
        report.metric(format!("e3c.{name}.8x32.compiled_secs"), fast);
        report.metric(format!("e3c.{name}.8x32.naive_secs"), slow);
        report.metric(format!("e3c.{name}.8x32.speedup"), speedup);
        report.metric(format!("e3c.{name}.8x32.delta_evals"), delta as f64);
        report.metric(format!("e3c.{name}.8x32.full_evals"), full as f64);
        rows.push(vec![
            name.to_owned(),
            format!("{:.1}ms", fast * 1e3),
            format!("{:.1}ms", slow * 1e3),
            format!("{speedup:.1}×"),
            format!("{delta}/{full}"),
        ]);
    }
    print_table(
        "E3c: compiled delta scoring vs naive re-evaluation (8×32, median of 5)",
        &["search", "compiled", "naive", "speedup", "delta/full evals"],
        &rows,
    );
    report.set_passed(min_speedup >= 5.0);
    report.note(format!(
        "e3c acceptance: compiled annealing+genetic must be ≥5× the naive path \
         on 8×32 (worst observed {min_speedup:.1}×)"
    ));

    if let Some(file) = report.emit_if_requested()? {
        println!("\nwrote {file}");
    }
    println!(
        "\nE3 PASS: Exact explodes past ~10⁶ placements while the \
         approximative algorithms handle 20×160 in milliseconds-to-seconds; \
         the compiled core runs the mutation searches {min_speedup:.1}×+ faster."
    );
    Ok(())
}
