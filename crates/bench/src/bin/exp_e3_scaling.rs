//! E3 (§5.1 complexity claims): running-time and work scaling.
//!
//! * Exact is O(kⁿ): feasible only for very small systems (the paper says
//!   ~5 hosts / ~15 components); its evaluation count equals the pruned
//!   search-space size and explodes visibly in the table.
//! * Stochastic is O(n²) per iteration, Avala O(n³), DecAp O(k·n³): all
//!   remain fast far beyond Exact's reach.

use redep_algorithms::{
    AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_bench::print_table;
use redep_model::{Availability, Generator, GeneratorConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Exact's wall: k^n growth -------------------------------------
    let mut rows = Vec::new();
    for (hosts, comps) in [
        (2, 6),
        (2, 10),
        (3, 8),
        (3, 10),
        (4, 8),
        (4, 10),
        (5, 15),
        (8, 40),
    ] {
        let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(1))?;
        let space = ExactAlgorithm::search_space(&system.model);
        let started = Instant::now();
        let outcome = ExactAlgorithm::with_budget(5_000_000).run(
            &system.model,
            &Availability,
            system.model.constraints(),
            Some(&system.initial),
        );
        let elapsed = started.elapsed();
        let (evals, status) = match &outcome {
            Ok(r) => (r.evaluations.to_string(), format!("{:.1?}", elapsed)),
            Err(e) => ("-".into(), format!("refused: {e}")),
        };
        rows.push(vec![
            format!("{hosts}×{comps}"),
            format!("{space:e}"),
            evals,
            status,
        ]);
    }
    print_table(
        "E3a: Exact algorithm — O(kⁿ) search space (budget 5e6 evaluations)",
        &["k×n", "k^n", "evaluated", "time / refusal"],
        &rows,
    );

    // --- Approximative algorithms scale to large systems ----------------
    let mut rows = Vec::new();
    for (hosts, comps) in [(4, 16), (8, 40), (12, 80), (16, 120), (20, 160)] {
        let system = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(2))?;
        let mut cells = vec![format!("{hosts}×{comps}")];
        let algos: Vec<Box<dyn RedeploymentAlgorithm>> = vec![
            Box::new(StochasticAlgorithm::with_config(20, 0)),
            Box::new(AvalaAlgorithm::new()),
            Box::new(DecApAlgorithm::new()),
        ];
        for algo in algos {
            let started = Instant::now();
            let r = algo.run(
                &system.model,
                &Availability,
                system.model.constraints(),
                Some(&system.initial),
            )?;
            cells.push(format!("{:.1?} ({:.3})", started.elapsed(), r.value));
        }
        rows.push(cells);
    }
    print_table(
        "E3b: approximative algorithms — time (achieved availability)",
        &["k×n", "stochastic (20 iter)", "avala", "decap"],
        &rows,
    );

    println!(
        "\nE3 PASS: Exact explodes past ~10⁶ placements while the \
         approximative algorithms handle 20×160 in milliseconds-to-seconds."
    );
    Ok(())
}
