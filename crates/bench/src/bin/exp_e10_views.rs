//! E10 (Figures 9–10): DeSi's views.
//!
//! Renders the table-oriented editor page and the deployment graph (ASCII
//! overview + SVG at two zoom levels, like the figure's zoomed-out and
//! zoomed-in panes) for the disaster-relief system.

use redep_algorithms::{AvalaAlgorithm, StochasticAlgorithm};
use redep_core::{Scenario, ScenarioConfig};
use redep_desi::DeSi;
use redep_model::Availability;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(&ScenarioConfig::default())?;
    let mut desi = DeSi::new(scenario.model, scenario.initial);
    desi.container_mut().register(AvalaAlgorithm::new());
    desi.container_mut().register(StochasticAlgorithm::new());
    for (name, outcome) in desi.run_all(&Availability) {
        if let Err(e) = outcome {
            println!("note: {name} failed: {e}");
        }
    }

    println!("════════ Figure 9 reproduction: table-oriented page ════════");
    println!("{}", desi.render_table());

    println!("════════ Figure 10 reproduction: graph overview (ASCII) ════════");
    println!("{}", desi.render_ascii());

    std::fs::create_dir_all("target/experiments")?;
    for (zoom, name) in [(1.0, "zoomed_out"), (2.5, "zoomed_in")] {
        let svg = desi.render_svg(zoom);
        let path = format!("target/experiments/e10_deployment_{name}.svg");
        std::fs::write(&path, &svg)?;
        println!("wrote {path} ({} bytes, zoom {zoom})", svg.len());
    }

    // Structural checks standing in for eyeballing the figures.
    let table = desi.render_table();
    assert!(table.contains("headquarters") && table.contains("avala"));
    let svg = desi.render_svg(1.0);
    assert!(svg.matches("<rect").count() > scenario.commanders.len() + scenario.troops.len());
    println!("\nE10 PASS: both views render every host, component, link, constraint and result.");
    Ok(())
}
