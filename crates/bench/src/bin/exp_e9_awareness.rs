//! E9 (§5.2): DecAp solution quality versus awareness.
//!
//! "Awareness denotes the extent of each host's knowledge about the global
//! system parameters." The sweep varies the fraction of peers each host
//! knows and reports the availability DecAp reaches — full awareness should
//! approach the centralized Avala result, zero awareness can change nothing.

use redep_algorithms::{AvalaAlgorithm, DecApAlgorithm, RedeploymentAlgorithm};
use redep_bench::{fmt_f, mean, print_table};
use redep_model::{Availability, AwarenessGraph, Generator, GeneratorConfig, Objective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEEDS: u64 = 5;
    let fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

    let mut per_fraction: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
    let mut initials = Vec::new();
    let mut avalas = Vec::new();

    for seed in 0..SEEDS {
        let system = Generator::generate(&GeneratorConfig::sized(6, 24).with_seed(seed))?;
        let initial_value = Availability.evaluate(&system.model, &system.initial);
        initials.push(initial_value);
        avalas.push(
            AvalaAlgorithm::new()
                .run(
                    &system.model,
                    &Availability,
                    system.model.constraints(),
                    Some(&system.initial),
                )?
                .value,
        );
        let hosts = system.model.host_ids();
        for (i, &fraction) in fractions.iter().enumerate() {
            let awareness = AwarenessGraph::random(&hosts, fraction, 100 + seed);
            let r = DecApAlgorithm::new().with_awareness(awareness).run(
                &system.model,
                &Availability,
                system.model.constraints(),
                Some(&system.initial),
            )?;
            per_fraction[i].push(r.value);
        }
    }

    let mut rows = vec![vec![
        "initial (no redeployment)".to_owned(),
        fmt_f(mean(&initials)),
    ]];
    for (i, &fraction) in fractions.iter().enumerate() {
        rows.push(vec![
            format!("DecAp, awareness {fraction:.1}"),
            fmt_f(mean(&per_fraction[i])),
        ]);
    }
    rows.push(vec![
        "centralized Avala (global)".to_owned(),
        fmt_f(mean(&avalas)),
    ]);
    print_table(
        &format!(
            "E9: availability vs awareness (mean of {SEEDS} systems, 6 hosts × 24 components)"
        ),
        &["configuration", "availability"],
        &rows,
    );

    let zero = mean(&per_fraction[0]);
    let full = mean(&per_fraction[fractions.len() - 1]);
    assert!(
        (zero - mean(&initials)).abs() < 1e-9,
        "E9 FAILED: zero awareness changed the deployment"
    );
    assert!(
        full > zero,
        "E9 FAILED: full awareness no better than zero ({full:.4} vs {zero:.4})"
    );
    // Monotone-ish trend: the top-awareness half beats the bottom half.
    let low = mean(&[
        mean(&per_fraction[0]),
        mean(&per_fraction[1]),
        mean(&per_fraction[2]),
    ]);
    let high = mean(&[
        mean(&per_fraction[3]),
        mean(&per_fraction[4]),
        mean(&per_fraction[5]),
    ]);
    assert!(
        high >= low,
        "E9 FAILED: quality does not grow with awareness"
    );
    println!(
        "\nE9 PASS: availability grows with awareness ({:.4} → {:.4}); \
         full-awareness DecAp reaches {:.1}% of centralized Avala.",
        zero,
        full,
        100.0 * full / mean(&avalas)
    );
    Ok(())
}
