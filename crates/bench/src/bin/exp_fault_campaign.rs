//! Fault campaign: the faults the paper is about, injected on purpose.
//!
//! Runs a fault-class × algorithm matrix — host crash, partition, link
//! degradation, link flapping, each against centralized frameworks pinned to
//! one algorithm and against the decentralized (DecAp) instantiation — and
//! measures, per cell:
//!
//! * the **baseline** windowed availability before the fault,
//! * the **dip** (worst window at/after fault onset),
//! * the **recovery time** from fault clearance back to ≥90 % of baseline,
//! * model/runtime **consistency**: no cycle may end with the framework's
//!   model disagreeing with where components actually run.
//!
//! Every fault plan is round-tripped through JSON before installation
//! (proving serde-loadability), and one cell is executed twice to assert the
//! run journal is byte-identical — same seed + same plan ⇒ same run.
//!
//! `--quick` shrinks the matrix and horizons (the CI smoke configuration);
//! `--json` writes `BENCH_faults.json` in the shared `ExpReport` schema.

use redep_bench::{fmt_f, print_table, ExpReport};
use redep_core::{
    AnalyzerConfig, CentralizedFramework, DecentralizedFramework, RecoveryPolicy, RuntimeConfig,
    SystemRuntime,
};
use redep_model::{Availability, DeploymentModel, Generator, GeneratorConfig};
use redep_netsim::{Duration, FaultKind, FaultPlan};
use redep_telemetry::Telemetry;

const FAULT_CLASSES: [&str; 4] = ["crash", "partition", "degrade", "flap"];

/// Measured outcome of one campaign cell.
struct CellOutcome {
    baseline: f64,
    dip: f64,
    recovery_secs: f64,
    final_availability: f64,
    recovered: bool,
    consistency_violations: u64,
    journal: String,
    /// Every windowed availability sample, for percentile reporting.
    availability_samples: Vec<f64>,
    /// Journal-overflow count — non-zero means traces are incomplete.
    journal_dropped: u64,
    /// Structural trace-invariant violations found in the cell's journal.
    trace_violations: Vec<String>,
    /// Crash recoveries performed (durable checkpoint + journal replays).
    recovery_reports: usize,
    /// Total per-operation verdicts those recoveries handed out.
    recovery_verdicts: usize,
    /// 1.0 iff every recovery's rebuilt state matched the pre-crash state.
    recovery_state_equiv: f64,
    /// Concatenated durable-store digests of every host (determinism probe).
    durable_digest: Vec<u8>,
}

/// Campaign horizons (simulated seconds).
#[derive(Clone, Copy)]
struct Horizons {
    fault_start: f64,
    fault_duration: f64,
    total: f64,
    effect_wait: Duration,
}

impl Horizons {
    fn new(quick: bool) -> Self {
        Horizons {
            fault_start: 10.0,
            fault_duration: if quick { 8.0 } else { 10.0 },
            total: if quick { 40.0 } else { 60.0 },
            effect_wait: Duration::from_secs_f64(if quick { 20.0 } else { 30.0 }),
        }
    }
    fn fault_end(&self) -> f64 {
        self.fault_start + self.fault_duration
    }
}

/// Builds the fault plan of one class against the generated topology, then
/// round-trips it through JSON — the same path a checked-in campaign file
/// would take.
fn fault_plan(class: &str, model: &DeploymentModel, h: Horizons) -> FaultPlan {
    let hosts = model.host_ids();
    // Crash a non-master host (the master at index 0 runs the deployer);
    // degrade/flap the first physical link that does not touch the master,
    // falling back to any link.
    let victim = hosts[1 % hosts.len()];
    let link = hosts
        .iter()
        .flat_map(|&a| model.neighbors(a).into_iter().map(move |b| (a, b)))
        .find(|&(a, b)| a.raw() < b.raw() && a != hosts[0] && b != hosts[0])
        .or_else(|| {
            hosts
                .iter()
                .flat_map(|&a| model.neighbors(a).into_iter().map(move |b| (a, b)))
                .find(|&(a, b)| a.raw() < b.raw())
        })
        .expect("generated models are connected");
    let half = hosts.len() / 2;
    let kind = match class {
        "crash" => FaultKind::HostCrash { host: victim },
        "partition" => FaultKind::Partition {
            groups: vec![hosts[..half].to_vec(), hosts[half..].to_vec()],
        },
        "degrade" => FaultKind::LinkDegrade {
            a: link.0,
            b: link.1,
            reliability_factor: 0.3,
            bandwidth_factor: 0.5,
        },
        "flap" => FaultKind::LinkFlap {
            a: link.0,
            b: link.1,
            period_secs: 2.0,
        },
        other => panic!("unknown fault class {other}"),
    };
    let plan = FaultPlan::new().episode(h.fault_start, h.fault_duration, kind);
    FaultPlan::from_json(&plan.to_json()).expect("fault plans round-trip through JSON")
}

/// Either framework instantiation, driven through one uniform loop.
enum Framework {
    Centralized(Box<CentralizedFramework>),
    Decentralized(Box<DecentralizedFramework>),
}

impl Framework {
    fn runtime(&self) -> &SystemRuntime {
        match self {
            Framework::Centralized(fw) => fw.runtime(),
            Framework::Decentralized(fw) => fw.runtime(),
        }
    }

    fn advance(&mut self, span: Duration) {
        match self {
            Framework::Centralized(fw) => fw.advance(span),
            Framework::Decentralized(fw) => fw.advance(span),
        }
    }

    fn cycle(&mut self, effect_wait: Duration) -> Result<(), Box<dyn std::error::Error>> {
        // Monitoring accumulated during `advance`; the cycle itself only
        // pulls, analyzes, and effects.
        match self {
            Framework::Centralized(fw) => {
                fw.cycle(&Availability, Duration::ZERO, effect_wait)?;
            }
            Framework::Decentralized(fw) => {
                fw.cycle(&Availability, Duration::ZERO, effect_wait)?;
            }
        }
        Ok(())
    }

    fn model_matches_actual(&self) -> bool {
        let actual = self.runtime().actual_deployment_by_id();
        match self {
            Framework::Centralized(fw) => fw.desi().system().deployment() == &actual,
            Framework::Decentralized(fw) => fw.system().deployment() == &actual,
        }
    }

    fn journal(&self) -> String {
        self.runtime().telemetry().export_jsonl()
    }
}

fn totals(rt: &SystemRuntime) -> (u64, u64) {
    let mut emitted = 0;
    let mut received = 0;
    for &h in rt.hosts() {
        if let Some(host) = rt.host(h) {
            let stats = host.services().stats();
            emitted += stats.app_events_emitted;
            received += stats.app_events_received;
        }
    }
    (emitted, received)
}

/// Runs one cell: build the framework, install the (JSON round-tripped)
/// plan, drive it in one-second windows with a framework cycle every five,
/// and score availability baseline/dip/recovery plus model consistency.
fn run_cell(
    class: &str,
    algo: &str,
    quick: bool,
) -> Result<CellOutcome, Box<dyn std::error::Error>> {
    let h = Horizons::new(quick);
    let system = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(7))?;
    let runtime_config = RuntimeConfig {
        seed: 1,
        ..RuntimeConfig::default()
    };
    let plan = fault_plan(class, &system.model, h);

    let mut fw = if algo == "decap" {
        let mut fw = DecentralizedFramework::new(
            system.model.clone(),
            system.initial.clone(),
            &runtime_config,
        )?;
        fw.set_recovery_policy(RecoveryPolicy::Reconcile {
            max_effect_attempts: 2,
        });
        fw.runtime_mut().set_telemetry(Telemetry::default());
        fw.runtime_mut().sim_mut().install_fault_plan(&plan);
        Framework::Decentralized(Box::new(fw))
    } else {
        let analyzer_config = AnalyzerConfig {
            algorithm_override: Some(algo.to_owned()),
            ..AnalyzerConfig::default()
        };
        let mut fw = CentralizedFramework::new(
            system.model.clone(),
            system.initial.clone(),
            &runtime_config,
            analyzer_config,
        )?;
        fw.set_recovery_policy(RecoveryPolicy::Reconcile {
            max_effect_attempts: 2,
        });
        fw.set_telemetry(Telemetry::default());
        fw.runtime_mut().sim_mut().install_fault_plan(&plan);
        Framework::Centralized(Box::new(fw))
    };

    let window = Duration::from_secs_f64(1.0);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut last = totals(fw.runtime());
    let mut consistency_violations = 0;
    let mut windows = 0u64;
    let sample = |fw: &Framework, last: &mut (u64, u64), samples: &mut Vec<(f64, f64)>| {
        let (emitted, received) = totals(fw.runtime());
        let (d_emitted, d_received) = (emitted - last.0, received - last.1);
        *last = (emitted, received);
        let availability = if d_emitted == 0 {
            1.0
        } else {
            d_received as f64 / d_emitted as f64
        };
        samples.push((fw.runtime().sim().now().as_secs_f64(), availability));
    };
    while fw.runtime().sim().now().as_secs_f64() < h.total {
        fw.advance(window);
        sample(&fw, &mut last, &mut samples);
        windows += 1;
        if windows.is_multiple_of(5) {
            fw.cycle(h.effect_wait)?;
            sample(&fw, &mut last, &mut samples);
            if !fw.model_matches_actual() {
                consistency_violations += 1;
            }
        }
    }

    let baseline_window: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| *t > 3.0 && *t <= h.fault_start)
        .map(|(_, a)| *a)
        .collect();
    let baseline = baseline_window.iter().sum::<f64>() / baseline_window.len().max(1) as f64;
    let dip = samples
        .iter()
        .filter(|(t, _)| *t > h.fault_start)
        .map(|(_, a)| *a)
        .fold(f64::INFINITY, f64::min);
    let recovery_threshold = 0.9 * baseline;
    let recovery_secs = samples
        .iter()
        .find(|(t, a)| *t >= h.fault_end() && *a >= recovery_threshold)
        .map(|(t, _)| t - h.fault_end());
    let tail: Vec<f64> = samples.iter().rev().take(3).map(|(_, a)| *a).collect();
    let final_availability = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    let recovered = recovery_secs.is_some() && final_availability >= recovery_threshold;

    // Reconstruct span trees from the journal and run the structural trace
    // invariants: every child span has a live parent, every opened move
    // settles, no traced cycle ends with the model diverging from the actual.
    let journal = fw.journal();
    let events = redep_telemetry::trace::parse_jsonl(&journal)
        .map_err(|e| format!("{class}/{algo}: journal does not parse: {e}"))?;
    let trace_violations = redep_telemetry::trace::check_journal(&events);
    let journal_dropped = fw.runtime().telemetry().journal().dropped();

    // Durable-recovery outcome: every restarted host left a report with an
    // explicit verdict per in-flight operation and a state-equivalence
    // self-check; the concatenated store digests feed the determinism probe.
    let rt = fw.runtime();
    let mut recovery_reports = 0usize;
    let mut recovery_verdicts = 0usize;
    let mut recovery_state_equiv = 1.0f64;
    let mut durable_digest = Vec::new();
    for &hid in rt.hosts() {
        if let Some(host) = rt.host(hid) {
            for r in host.recovery_reports() {
                recovery_reports += 1;
                recovery_verdicts += r.verdicts.len();
                if !r.state_equiv {
                    recovery_state_equiv = 0.0;
                }
            }
            durable_digest.extend(host.durable_digest());
        }
    }

    Ok(CellOutcome {
        baseline,
        dip,
        recovery_secs: recovery_secs.unwrap_or(h.total - h.fault_end()),
        final_availability,
        recovered,
        consistency_violations,
        journal,
        availability_samples: samples.iter().map(|&(_, a)| a).collect(),
        journal_dropped,
        trace_violations,
        recovery_reports,
        recovery_verdicts,
        recovery_state_equiv,
        durable_digest,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--journal <dir>`: write each cell's run journal to
    // `<dir>/<fault>_<algo>.jsonl` for offline analysis with `redep-trace`.
    let journal_dir = args
        .iter()
        .position(|a| a == "--journal")
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or("--journal requires a directory argument")
        })
        .transpose()?;
    if let Some(dir) = &journal_dir {
        std::fs::create_dir_all(dir)?;
    }
    // `--only <class>`: restrict the matrix to one fault class (the CI
    // crash-recovery smoke runs `--only crash`).
    let only = args
        .iter()
        .position(|a| a == "--only")
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or("--only requires a fault class argument")
        })
        .transpose()?;
    let classes: Vec<&str> = FAULT_CLASSES
        .iter()
        .copied()
        .filter(|c| only.as_deref().is_none_or(|o| o == *c))
        .collect();
    if classes.is_empty() {
        return Err(format!(
            "--only {}: unknown fault class (expected one of {FAULT_CLASSES:?})",
            only.unwrap_or_default()
        )
        .into());
    }
    let algorithms: &[&str] = if quick {
        &["stochastic", "decap"]
    } else {
        &["stochastic", "avala", "decap"]
    };

    let mut report = ExpReport::new(
        "faults",
        "Fault campaign: availability dip and recovery per fault class × algorithm",
    );
    report.note(if quick {
        "quick mode: 40 s horizon, 8 s faults, stochastic + decap"
    } else {
        "full mode: 60 s horizon, 10 s faults, stochastic + avala + decap"
    });

    let mut rows = Vec::new();
    let mut all_recovered = true;
    let mut total_violations = 0;
    let mut total_trace_violations = 0usize;
    let mut crash_recovery_ok = true;
    for &class in &classes {
        for &algo in algorithms {
            let cell = run_cell(class, algo, quick)?;
            all_recovered &= cell.recovered;
            total_violations += cell.consistency_violations;
            if class == "crash" {
                // The crash cell must actually exercise durable recovery:
                // the victim restarts, replays its store, self-checks state
                // equivalence, and hands out at least one verdict.
                crash_recovery_ok &= cell.recovery_reports >= 1
                    && cell.recovery_verdicts >= 1
                    && cell.recovery_state_equiv >= 1.0;
            }
            for violation in &cell.trace_violations {
                eprintln!("trace invariant [{class}.{algo}]: {violation}");
            }
            total_trace_violations += cell.trace_violations.len();
            report.add_journal_dropped(cell.journal_dropped);
            let key = format!("{class}.{algo}");
            report.metric(format!("{key}.baseline"), cell.baseline);
            report.metric(format!("{key}.dip"), cell.dip);
            report.metric(format!("{key}.recovery_secs"), cell.recovery_secs);
            report.metric(format!("{key}.final"), cell.final_availability);
            report.metric(
                format!("{key}.recover.reports"),
                cell.recovery_reports as f64,
            );
            report.metric(
                format!("{key}.recover.verdicts"),
                cell.recovery_verdicts as f64,
            );
            report.metric(
                format!("{key}.recover.state_equiv"),
                cell.recovery_state_equiv,
            );
            report.percentiles_of(format!("{key}.availability"), &cell.availability_samples);
            if let Some(dir) = &journal_dir {
                std::fs::write(format!("{dir}/{class}_{algo}.jsonl"), &cell.journal)?;
            }
            rows.push(vec![
                class.to_owned(),
                algo.to_owned(),
                fmt_f(cell.baseline),
                fmt_f(cell.dip),
                format!("{:.1}", cell.recovery_secs),
                fmt_f(cell.final_availability),
                if cell.recovered { "yes" } else { "NO" }.to_owned(),
            ]);
        }
    }
    print_table(
        "Fault campaign: windowed availability around injected faults",
        &[
            "fault",
            "algorithm",
            "baseline",
            "dip",
            "recovery (s)",
            "final",
            "recovered",
        ],
        &rows,
    );

    // Determinism: the same seed and the same plan must produce the same
    // run, byte for byte, in the machine-readable journal — and leave
    // byte-identical durable stores (checkpoints + write-ahead journals) on
    // every host, crash recovery included.
    let a = run_cell("crash", algorithms[0], quick)?;
    let b = run_cell("crash", algorithms[0], quick)?;
    let deterministic = a.journal == b.journal
        && !a.journal.is_empty()
        && a.durable_digest == b.durable_digest
        && !a.durable_digest.is_empty();
    println!(
        "\ndeterminism: two identical crash runs -> journals {} ({} bytes), durable stores {} ({} digest bytes)",
        if a.journal == b.journal { "identical" } else { "DIFFER" },
        a.journal.len(),
        if a.durable_digest == b.durable_digest { "identical" } else { "DIFFER" },
        a.durable_digest.len()
    );

    report.metric("consistency.violations", total_violations as f64);
    report.metric("trace.violations", total_trace_violations as f64);
    report.metric("determinism.identical", f64::from(u8::from(deterministic)));
    report.set_passed(
        all_recovered
            && total_violations == 0
            && total_trace_violations == 0
            && deterministic
            && crash_recovery_ok,
    );

    assert!(
        all_recovered,
        "fault campaign FAILED: a fault class did not recover"
    );
    assert!(
        crash_recovery_ok,
        "fault campaign FAILED: a crash cell recovered without durable reports, \
         verdicts, or state equivalence"
    );
    assert_eq!(
        total_violations, 0,
        "fault campaign FAILED: a cycle left the model diverging from the running system"
    );
    assert_eq!(
        total_trace_violations, 0,
        "fault campaign FAILED: a cell's journal violates the trace invariants"
    );
    assert!(
        deterministic,
        "fault campaign FAILED: identical runs produced different journals"
    );
    if let Some(file) = report.emit_if_requested()? {
        println!("wrote {file}");
    }
    println!(
        "\nfault campaign PASS: every fault class recovered; model == actual after every cycle."
    );
    Ok(())
}
