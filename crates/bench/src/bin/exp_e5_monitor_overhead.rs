//! E5 (§4.3): monitoring overhead.
//!
//! "Our assessment of Prism-MW's monitoring support suggests that monitoring
//! on each host may induce as little as 0.1% and no greater than 10% in
//! memory and efficiency overheads."
//!
//! Measured here as event-pumping throughput of an architecture with its
//! connector monitor enabled vs. absent, plus the monitor's memory
//! footprint relative to the host runtime's working state.

use redep_bench::{fmt_f, print_table, ExpReport};
use redep_model::HostId;
use redep_netsim::{Duration, SimTime};
use redep_prism::{Architecture, ComponentBehavior, ComponentCtx, Event, EventFrequencyMonitor};
use std::time::Instant;

/// Bounces events back and forth `hops` times.
struct Bouncer {
    remaining: u32,
}
impl ComponentBehavior for Bouncer {
    fn type_name(&self) -> &str {
        "bouncer"
    }
    fn handle(&mut self, ctx: &mut ComponentCtx<'_>, _event: &Event) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.emit(Event::notification("bounce").with_size(64));
        }
    }
}

fn throughput(monitored: bool, events: u32) -> (f64, u64) {
    let mut arch = Architecture::new("bench", HostId::new(0));
    let a = arch
        .add_component("a", Bouncer { remaining: events })
        .unwrap();
    let b = arch
        .add_component("b", Bouncer { remaining: events })
        .unwrap();
    let bus = arch.add_connector("bus");
    arch.weld(a, bus).unwrap();
    arch.weld(b, bus).unwrap();
    if monitored {
        arch.attach_monitor(
            bus,
            EventFrequencyMonitor::new(Duration::from_secs_f64(1.0)),
        )
        .unwrap();
    }
    arch.publish("a", Event::notification("bounce")).unwrap();
    let started = Instant::now();
    let processed = arch.pump(SimTime::ZERO);
    let secs = started.elapsed().as_secs_f64();
    (processed as f64 / secs, processed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const EVENTS: u32 = 300_000;
    // Warm up, then interleave measurements to be fair to both.
    let _ = throughput(false, 10_000);
    let _ = throughput(true, 10_000);
    let mut plain = Vec::new();
    let mut monitored = Vec::new();
    for _ in 0..5 {
        plain.push(throughput(false, EVENTS).0);
        monitored.push(throughput(true, EVENTS).0);
    }
    let p = redep_bench::mean(&plain);
    let m = redep_bench::mean(&monitored);
    let overhead = (p - m) / p * 100.0;

    // Memory: a frequency monitor keeps one counter slot per observed
    // component pair (two names + two u64 counters) plus the struct header —
    // compare against a conservative 64 KiB PDA-class middleware image (the
    // deployment target the paper measured on).
    let per_pair = 2 * (24 + 16) + 16; // two small Strings + count + bytes
    let monitor_bytes = std::mem::size_of::<EventFrequencyMonitor>() + 2 * per_pair;
    let mem_overhead = monitor_bytes as f64 / (64.0 * 1024.0) * 100.0;

    print_table(
        "E5: monitoring overhead (event-frequency monitor on the bus connector)",
        &["configuration", "events/s", "relative"],
        &[
            vec!["monitors off".into(), fmt_f(p), "1.000".into()],
            vec!["monitors on".into(), fmt_f(m), fmt_f(m / p)],
            vec![
                "throughput overhead".into(),
                format!("{overhead:.2}%"),
                "".into(),
            ],
            vec![
                "memory overhead (est.)".into(),
                format!("{mem_overhead:.2}%"),
                "".into(),
            ],
        ],
    );

    let mut report = ExpReport::new("e5", "monitoring overhead (§4.3)");
    report
        .metric("throughput_plain_events_per_s", p)
        .metric("throughput_monitored_events_per_s", m)
        .metric("throughput_overhead_pct", overhead)
        .metric("memory_overhead_pct", mem_overhead)
        .note("paper's bound: 0.1%-10% overhead; assertion allows wall-clock noise up to 15%")
        .set_passed(overhead < 15.0);
    if let Some(file) = report.emit_if_requested()? {
        println!("\nwrote {file}");
    }

    assert!(
        overhead < 15.0,
        "E5 FAILED: monitoring overhead {overhead:.1}% far above the paper's ≤10% bound"
    );
    println!(
        "\nE5 {}: measured {overhead:.2}% efficiency overhead (paper: 0.1%–10%).",
        if overhead <= 10.0 { "PASS" } else { "MARGINAL" }
    );
    Ok(())
}
