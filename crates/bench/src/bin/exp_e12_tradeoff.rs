//! E12 (§6 future work): conflicting objectives.
//!
//! The paper's conclusion names "situations where different desired system
//! characteristics may be conflicting" as future work. The [`Composite`]
//! objective realizes it: sweeping the availability/latency weight exposes
//! the trade-off curve between the two characteristics.

use redep_algorithms::{ExactAlgorithm, RedeploymentAlgorithm};
use redep_bench::{fmt_f, print_table};
use redep_model::{Availability, Composite, Generator, GeneratorConfig, Latency, Objective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A model where availability and latency genuinely conflict: the most
    // reliable link is also the slowest.
    let mut system = Generator::generate(&GeneratorConfig::sized(3, 8).with_seed(12))?;
    let hosts = system.model.host_ids();
    system.model.set_physical_link(hosts[0], hosts[1], |l| {
        l.set_reliability(0.95);
        l.set_bandwidth(1_000.0); // reliable but slow
        l.set_delay(2.0);
    })?;
    system.model.set_physical_link(hosts[0], hosts[2], |l| {
        l.set_reliability(0.55);
        l.set_bandwidth(1_000_000.0); // fast but flaky
        l.set_delay(0.001);
    })?;
    system.model.set_physical_link(hosts[1], hosts[2], |l| {
        l.set_reliability(0.55);
        l.set_bandwidth(1_000_000.0);
        l.set_delay(0.001);
    })?;
    // Memory pressure prevents the trivial all-on-one-host answer.
    for h in &hosts {
        system.model.host_mut(*h)?.set_memory(45.0);
    }
    for c in system.model.component_ids() {
        system.model.component_mut(c)?.set_required_memory(15.0);
    }

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for w_avail in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let objective = Composite::new()
            .with("availability", Availability, w_avail)
            .with("latency", Latency::new(), 1.0 - w_avail);
        let r = ExactAlgorithm::new().run(
            &system.model,
            &objective,
            system.model.constraints(),
            None,
        )?;
        let availability = Availability.evaluate(&system.model, &r.deployment);
        let latency = Latency::new().evaluate(&system.model, &r.deployment);
        points.push((availability, latency));
        rows.push(vec![
            format!("{w_avail:.2}"),
            format!("{:.2}", 1.0 - w_avail),
            fmt_f(availability),
            fmt_f(latency),
            fmt_f(r.value),
        ]);
    }
    print_table(
        "E12: availability/latency trade-off (Exact optimum per weighting)",
        &[
            "w(avail)",
            "w(latency)",
            "availability",
            "latency",
            "composite",
        ],
        &rows,
    );

    let (a_first, l_first) = points[0]; // pure latency
    let (a_last, l_last) = points[points.len() - 1]; // pure availability
    assert!(
        a_last >= a_first,
        "E12 FAILED: availability weight did not raise availability"
    );
    assert!(
        l_last >= l_first,
        "E12 FAILED: no conflict — pure availability should cost latency here"
    );
    println!(
        "\nE12 PASS: the objectives conflict — pure-availability optimum pays \
         {:.3} latency vs {:.3} for pure-latency, while raising availability \
         {:.4} → {:.4}.",
        l_last, l_first, a_first, a_last
    );
    Ok(())
}
