//! E2 (Figure 3, §5.2): the decentralized instantiation.
//!
//! No master host: local monitors, awareness-bounded models, DecAp auctions,
//! a voting analyzer, pairwise effecting. Compared against the centralized
//! Avala result on the same system (DecAp should approach it).

use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_bench::{fmt_f, print_table};
use redep_core::{DecentralizedFramework, RuntimeConfig, Scenario, ScenarioConfig};
use redep_model::{Availability, Objective};
use redep_netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(&ScenarioConfig {
        commanders: 3,
        troops: 6,
        seed: 13,
    })?;
    let before = Availability.evaluate(&scenario.model, &scenario.initial);

    // Centralized yardstick (global knowledge): the best of the §5.1
    // approximative suite plus the annealing extension.
    let mut centralized = f64::NEG_INFINITY;
    let suite: Vec<Box<dyn RedeploymentAlgorithm>> = vec![
        Box::new(AvalaAlgorithm::new()),
        Box::new(StochasticAlgorithm::new()),
        Box::new(AnnealingAlgorithm::new()),
    ];
    for algo in suite {
        let r = algo.run(
            &scenario.model,
            &Availability,
            scenario.model.constraints(),
            Some(&scenario.initial),
        )?;
        centralized = centralized.max(r.value);
    }

    let mut fw = DecentralizedFramework::new(
        scenario.model.clone(),
        scenario.initial.clone(),
        &RuntimeConfig::default(),
    )?;

    let mut rows = Vec::new();
    for cycle in 1..=6 {
        let report = fw.cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )?;
        rows.push(vec![
            cycle.to_string(),
            format!("{:.0}", report.time_secs),
            report.hosts_reporting.to_string(),
            fmt_f(report.availability_before),
            fmt_f(report.availability_proposed),
            report.votes_for.to_string(),
            if report.adopted {
                format!("adopted ({} moves)", report.moves)
            } else {
                "kept".into()
            },
            fmt_f(report.measured_availability),
        ]);
    }
    print_table(
        "E2: decentralized framework cycles (DecAp auctions + voting)",
        &[
            "cycle", "t(s)", "reports", "avail", "proposed", "votes", "outcome", "measured",
        ],
        &rows,
    );

    // Final quality on the *true* model (what actually runs where).
    let actual = fw.runtime().actual_deployment_by_id();
    let after = Availability.evaluate(&scenario.model, &actual);
    print_table(
        "E2 summary: decentralized vs centralized",
        &["deployment", "availability (true model)"],
        &[
            vec!["initial".into(), fmt_f(before)],
            vec![
                "decentralized (DecAp, awareness-bounded)".into(),
                fmt_f(after),
            ],
            vec![
                "best centralized algorithm (global knowledge)".into(),
                fmt_f(centralized),
            ],
        ],
    );
    assert!(after >= before - 1e-9, "E2 FAILED: decentralized regressed");
    println!(
        "\nE2 PASS: decentralized improvement {before:.4} → {after:.4} \
         (best centralized: {centralized:.4})"
    );
    Ok(())
}
