//! Criterion benches: the cost of monitoring (experiment E5's counterpart),
//! of the objective evaluations at the algorithms' core, and of the
//! telemetry hot paths (counter increments and journal records must stay
//! cheap enough to leave compiled into the simulators).

use criterion::{criterion_group, criterion_main, Criterion};
use redep_model::{Availability, Generator, GeneratorConfig, HostId, Latency, Objective};
use redep_netsim::{Duration, SimTime};
use redep_prism::{Architecture, ComponentBehavior, ComponentCtx, Event, EventFrequencyMonitor};
use redep_telemetry::Telemetry;

struct Bouncer {
    remaining: u32,
}
impl ComponentBehavior for Bouncer {
    fn type_name(&self) -> &str {
        "bouncer"
    }
    fn handle(&mut self, ctx: &mut ComponentCtx<'_>, _event: &Event) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.emit(Event::notification("bounce").with_size(64));
        }
    }
}

fn pump(monitored: bool, events: u32) -> u64 {
    let mut arch = Architecture::new("bench", HostId::new(0));
    let a = arch
        .add_component("a", Bouncer { remaining: events })
        .unwrap();
    let b = arch
        .add_component("b", Bouncer { remaining: events })
        .unwrap();
    let bus = arch.add_connector("bus");
    arch.weld(a, bus).unwrap();
    arch.weld(b, bus).unwrap();
    if monitored {
        arch.attach_monitor(
            bus,
            EventFrequencyMonitor::new(Duration::from_secs_f64(1.0)),
        )
        .unwrap();
    }
    arch.publish("a", Event::notification("bounce")).unwrap();
    arch.pump(SimTime::ZERO)
}

fn bench_monitoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_pump_10k");
    group.bench_function("monitors_off", |b| b.iter(|| pump(false, 10_000)));
    group.bench_function("monitors_on", |b| b.iter(|| pump(true, 10_000)));
    group.finish();
}

fn bench_objectives(c: &mut Criterion) {
    let s = Generator::generate(&GeneratorConfig::sized(8, 40).with_seed(1)).unwrap();
    let mut group = c.benchmark_group("objective_eval_8x40");
    group.bench_function("availability", |b| {
        b.iter(|| Availability.evaluate(&s.model, &s.initial))
    });
    group.bench_function("latency", |b| {
        b.iter(|| Latency::new().evaluate(&s.model, &s.initial))
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    let tele = Telemetry::new(4096);
    let counter = tele.metrics().counter("bench.counter");
    let histogram = tele
        .metrics()
        .histogram("bench.hist", &[1.0, 10.0, 100.0, 1000.0]);
    let disabled = Telemetry::disabled();

    let mut group = c.benchmark_group("telemetry_hot_path");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_observe", |b| b.iter(|| histogram.observe(42.0)));
    let mut t = 0u64;
    group.bench_function("event_record_2_fields", |b| {
        b.iter(|| {
            t += 1;
            tele.event("bench.event", t)
                .field("a", 1u64)
                .field("b", "x")
                .emit();
        })
    });
    group.bench_function("event_record_disabled", |b| {
        b.iter(|| disabled.event("bench.event", 1).field("a", 1u64).emit())
    });
    group.finish();
}

criterion_group!(benches, bench_monitoring, bench_objectives, bench_telemetry);
criterion_main!(benches);
