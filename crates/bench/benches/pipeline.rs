//! Criterion benches for the runtime fast path this PR introduced: the
//! router hot loop (interned-symbol adjacency, `Arc`-shared payloads) and
//! the wire codec (binary vs the legacy JSON format), matching the
//! `exp_e6_pipeline` experiment at micro scale.

use criterion::{criterion_group, criterion_main, Criterion};
use redep_model::HostId;
use redep_netsim::SimTime;
use redep_prism::{Architecture, ComponentBehavior, ComponentCtx, Event, WireCodec};

/// Re-emits every event it receives until its budget runs out, keeping the
/// connector's route→pump loop saturated.
struct Relay {
    remaining: u32,
}
impl ComponentBehavior for Relay {
    fn type_name(&self) -> &str {
        "relay"
    }
    fn handle(&mut self, ctx: &mut ComponentCtx<'_>, _event: &Event) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.emit(Event::notification("relay.hop").with_size(64));
        }
    }
}

/// Routes ~`events` emissions through a bus with `fan` welded components.
fn route(fan: u32, events: u32) -> u64 {
    let mut arch = Architecture::new("bench", HostId::new(0));
    let bus = arch.add_connector("bus");
    for i in 0..fan {
        let id = arch
            .add_component(format!("c{i}"), Relay { remaining: events })
            .unwrap();
        arch.weld(id, bus).unwrap();
    }
    arch.publish("c0", Event::notification("relay.hop"))
        .unwrap();
    arch.pump(SimTime::ZERO)
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_hot_path");
    group.bench_function("fan2_10k_events", |b| b.iter(|| route(2, 10_000)));
    group.bench_function("fan16_1k_events", |b| b.iter(|| route(16, 1_000)));
    group.finish();
}

fn sample_event() -> Event {
    Event::request("pipeline.sample")
        .with_param("attempt", 3i64)
        .with_param("ratio", 0.875)
        .with_param("peer", "component-17")
        .with_payload(vec![0xA5u8; 64])
        .with_size(256)
}

fn bench_codec(c: &mut Criterion) {
    let event = sample_event();
    let binary = event.encode_with(WireCodec::Binary).unwrap();
    let json = event.encode_with(WireCodec::Json).unwrap();
    assert!(binary.len() <= json.len());

    let mut group = c.benchmark_group("codec_roundtrip");
    group.bench_function("binary_encode", |b| {
        b.iter(|| event.encode_with(WireCodec::Binary).unwrap())
    });
    group.bench_function("json_encode", |b| {
        b.iter(|| event.encode_with(WireCodec::Json).unwrap())
    });
    group.bench_function("binary_decode", |b| {
        b.iter(|| Event::decode(&binary).unwrap())
    });
    group.bench_function("json_decode", |b| b.iter(|| Event::decode(&json).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_router, bench_codec);
criterion_main!(benches);
