//! Criterion benches: end-to-end redeployment effecting and simulator
//! throughput (experiment E7's wall-clock counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redep_core::{RuntimeConfig, SystemRuntime};
use redep_model::{Generator, GeneratorConfig, HostId};
use redep_netsim::Duration;
use std::collections::BTreeMap;

/// Builds a runtime, warms it up, effects `moves` migrations, and drives the
/// simulation to completion. The measured quantity is host wall time for the
/// whole simulated redeployment.
fn effect_moves(moves: usize) {
    let system = Generator::generate(&GeneratorConfig::sized(6, 24).with_seed(4)).unwrap();
    let mut runtime =
        SystemRuntime::build(&system.model, &system.initial, &RuntimeConfig::default()).unwrap();
    runtime.run_for(Duration::from_secs_f64(2.0));

    let names = runtime.component_names().clone();
    let hosts = runtime.hosts().to_vec();
    let mut target: BTreeMap<String, HostId> = BTreeMap::new();
    for (c, h) in system.initial.iter().take(moves) {
        target.insert(
            names[&c].clone(),
            hosts[(h.raw() as usize + 1) % hosts.len()],
        );
    }
    let master = runtime.master().unwrap();
    runtime
        .host_mut(master)
        .unwrap()
        .effect_redeployment(target)
        .unwrap();
    for _ in 0..120 {
        runtime.run_for(Duration::from_millis(250));
        if runtime
            .host(master)
            .unwrap()
            .deployer()
            .unwrap()
            .status()
            .is_complete()
        {
            return;
        }
    }
    panic!("redeployment did not complete");
}

fn bench_redeploy(c: &mut Criterion) {
    let mut group = c.benchmark_group("effect_redeployment");
    group.sample_size(10);
    for moves in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(moves), &moves, |b, &moves| {
            b.iter(|| effect_moves(moves))
        });
    }
    group.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_second");
    group.sample_size(10);
    group.bench_function("10_hosts_workload", |b| {
        let system = Generator::generate(&GeneratorConfig::sized(10, 40).with_seed(5)).unwrap();
        b.iter(|| {
            let mut runtime =
                SystemRuntime::build(&system.model, &system.initial, &RuntimeConfig::default())
                    .unwrap();
            runtime.run_for(Duration::from_secs_f64(1.0));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_redeploy, bench_sim_throughput);
criterion_main!(benches);
