//! Criterion benches: redeployment-algorithm running time vs system size
//! (the wall-clock counterpart of experiment E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redep_algorithms::{
    AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm, RedeploymentAlgorithm,
    StochasticAlgorithm,
};
use redep_model::{Availability, Deployment, DeploymentModel, Generator, GeneratorConfig};

fn instance(hosts: usize, comps: usize) -> (DeploymentModel, Deployment) {
    let s = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(3)).unwrap();
    (s.model, s.initial)
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    for (hosts, comps) in [(2, 8), (3, 8), (4, 9)] {
        let (model, initial) = instance(hosts, comps);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{hosts}x{comps}")),
            &(model, initial),
            |b, (model, initial)| {
                b.iter(|| {
                    ExactAlgorithm::new()
                        .run(model, &Availability, model.constraints(), Some(initial))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_approximative(c: &mut Criterion) {
    for (name, algo) in [
        (
            "stochastic",
            Box::new(StochasticAlgorithm::with_config(20, 0)) as Box<dyn RedeploymentAlgorithm>,
        ),
        ("avala", Box::new(AvalaAlgorithm::new())),
        ("genetic", Box::new(GeneticAlgorithm::new())),
        ("decap", Box::new(DecApAlgorithm::new())),
    ] {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for (hosts, comps) in [(4, 16), (8, 40), (12, 80)] {
            let (model, initial) = instance(hosts, comps);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{hosts}x{comps}")),
                &(model, initial),
                |b, (model, initial)| {
                    b.iter(|| {
                        algo.run(model, &Availability, model.constraints(), Some(initial))
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_exact, bench_approximative);
criterion_main!(benches);
