//! Criterion benches: redeployment-algorithm running time vs system size
//! (the wall-clock counterpart of experiment E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redep_algorithms::annealing::AnnealingConfig;
use redep_algorithms::genetic::GeneticConfig;
use redep_algorithms::hierarchy::HierarchicalConfig;
use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_model::{
    Availability, Deployment, DeploymentModel, Generator, GeneratorConfig, Uncompiled,
};

fn instance(hosts: usize, comps: usize) -> (DeploymentModel, Deployment) {
    let s = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(3)).unwrap();
    (s.model, s.initial)
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    for (hosts, comps) in [(2, 8), (3, 8), (4, 9)] {
        let (model, initial) = instance(hosts, comps);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{hosts}x{comps}")),
            &(model, initial),
            |b, (model, initial)| {
                b.iter(|| {
                    ExactAlgorithm::new()
                        .run(model, &Availability, model.constraints(), Some(initial))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_approximative(c: &mut Criterion) {
    for (name, algo) in [
        (
            "stochastic",
            Box::new(StochasticAlgorithm::with_config(20, 0)) as Box<dyn RedeploymentAlgorithm>,
        ),
        ("avala", Box::new(AvalaAlgorithm::new())),
        ("genetic", Box::new(GeneticAlgorithm::new())),
        ("decap", Box::new(DecApAlgorithm::new())),
    ] {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for (hosts, comps) in [(4, 16), (8, 40), (12, 80)] {
            let (model, initial) = instance(hosts, comps);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{hosts}x{comps}")),
                &(model, initial),
                |b, (model, initial)| {
                    b.iter(|| {
                        algo.run(model, &Availability, model.constraints(), Some(initial))
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

/// Compiled evaluation core vs the naive trait-object path, on the two
/// mutation-driven searches the compiled core was built for. `Uncompiled`
/// hides `Objective::compiled` so the identical body runs through from-scratch
/// `evaluate` calls instead of dense delta scoring.
fn bench_compiled_vs_naive(c: &mut Criterion) {
    let (model, initial) = instance(8, 32);

    let mut group = c.benchmark_group("annealing_8x32");
    group.sample_size(10);
    let annealing = AnnealingAlgorithm::with_config(AnnealingConfig {
        iterations: 2_000,
        ..AnnealingConfig::default()
    });
    group.bench_function("compiled", |b| {
        b.iter(|| {
            annealing
                .run(&model, &Availability, model.constraints(), Some(&initial))
                .unwrap()
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            annealing
                .run(
                    &model,
                    &Uncompiled(&Availability),
                    model.constraints(),
                    Some(&initial),
                )
                .unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("genetic_8x32");
    group.sample_size(10);
    let genetic = GeneticAlgorithm::with_config(GeneticConfig {
        generations: 20,
        ..GeneticConfig::default()
    });
    group.bench_function("compiled", |b| {
        b.iter(|| {
            genetic
                .run(&model, &Availability, model.constraints(), Some(&initial))
                .unwrap()
        })
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            genetic
                .run(
                    &model,
                    &Uncompiled(&Availability),
                    model.constraints(),
                    Some(&initial),
                )
                .unwrap()
        })
    });
    group.finish();
}

/// Regression guard for the avala hot loop: the greedy placement used to
/// rescan the whole assignment matrix for admissibility on every candidate
/// (accidentally cubic); this pins the fixed incremental-load path, flat vs
/// hierarchical, at the E3d gate size so the rescan cannot creep back in.
fn bench_avala_hot_loop(c: &mut Criterion) {
    let (model, initial) = instance(20, 160);
    let mut group = c.benchmark_group("avala_20x160");
    group.sample_size(10);
    let flat = AvalaAlgorithm::new();
    group.bench_function("flat", |b| {
        b.iter(|| {
            flat.run(&model, &Availability, model.constraints(), Some(&initial))
                .unwrap()
        })
    });
    let hier = AvalaAlgorithm::new().with_hierarchy(HierarchicalConfig::default());
    group.bench_function("hierarchical", |b| {
        b.iter(|| {
            hier.run(&model, &Availability, model.constraints(), Some(&initial))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact,
    bench_approximative,
    bench_compiled_vs_naive,
    bench_avala_hot_loop
);
criterion_main!(benches);
