//! The system runtime: a whole distributed Prism-MW system assembled from a
//! deployment model and executed on the network simulator.
//!
//! This is the "Implementation Platform" box of the paper's Figure 1: the
//! running system the framework monitors and reconfigures. Both the
//! centralized and the decentralized instantiations build on it.

use crate::error::CoreError;
use redep_model::{ComponentId, Deployment, DeploymentModel, HostId};
use redep_netsim::{Duration, NetworkTopology, ShardedSimulator, Simulator};
use redep_prism::workload::{InteractionSpec, WORKLOAD_TYPE};
use redep_prism::{host::HostConfig, ComponentFactory, PrismHost, WorkloadComponent};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a system runtime.
#[derive(Clone, PartialEq, Debug)]
pub struct RuntimeConfig {
    /// Simulation seed.
    pub seed: u64,
    /// The master host (runs the deployer) — `None` for decentralized
    /// systems without a single point of control.
    pub master: Option<HostId>,
    /// Monitoring window length.
    pub monitor_window: Duration,
    /// ε for the hosts' stability gauges.
    pub epsilon: f64,
    /// Consecutive stable differences required before hosts report.
    pub stable_windows: usize,
    /// Whether hosts park events for absent components during migrations
    /// (disable only for the buffering ablation).
    pub buffer_during_migration: bool,
    /// How long the deployer waits for a move's ack before reissuing it.
    pub move_deadline: Duration,
    /// Send attempts per move before the deployer reports it failed.
    pub max_move_attempts: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let host_defaults = HostConfig::default();
        RuntimeConfig {
            seed: 0,
            master: Some(HostId::new(0)),
            monitor_window: Duration::from_secs_f64(2.0),
            epsilon: 0.5,
            stable_windows: 2,
            buffer_during_migration: true,
            move_deadline: host_defaults.move_deadline,
            max_move_attempts: host_defaults.max_move_attempts,
        }
    }
}

/// A running distributed system: one [`PrismHost`] per model host, workload
/// components realizing the model's logical links, all executing inside a
/// [`Simulator`] whose topology mirrors the model's physical links.
pub struct SystemRuntime {
    sim: Simulator,
    hosts: Vec<HostId>,
    master: Option<HostId>,
    names: BTreeMap<ComponentId, String>,
}

impl std::fmt::Debug for SystemRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemRuntime")
            .field("hosts", &self.hosts.len())
            .field("components", &self.names.len())
            .field("master", &self.master)
            .finish()
    }
}

impl SystemRuntime {
    /// Assembles and starts a runtime for `model` deployed as `deployment`.
    ///
    /// Each model component becomes a migratable [`WorkloadComponent`] whose
    /// interaction specs realize the model's logical links (the lower-id
    /// endpoint of each link acts as the sender).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Build`] when component names are not unique or
    /// the deployment is incomplete, and propagates model errors.
    pub fn build(
        model: &DeploymentModel,
        deployment: &Deployment,
        config: &RuntimeConfig,
    ) -> Result<Self, CoreError> {
        let (assembled, names) = assemble_hosts(model, deployment, config)?;
        let mut sim = Simulator::new(config.seed);
        let mut hosts = Vec::with_capacity(assembled.len());
        for (h, prism) in assembled {
            hosts.push(h);
            sim.add_host(h, prism);
        }

        // Network topology mirrors the model's physical links.
        let topo = NetworkTopology::from_model(model);
        for (pair, state) in topo.links() {
            sim.set_link(pair.lo(), pair.hi(), state.spec);
        }

        Ok(SystemRuntime {
            sim,
            hosts,
            master: config.master,
            names,
        })
    }

    /// Installs one telemetry handle across the whole running system: the
    /// simulator and every Prism host share it, so network, middleware, and
    /// framework records interleave in a single sim-time-ordered journal.
    pub fn set_telemetry(&mut self, telemetry: redep_telemetry::Telemetry) {
        let hosts = self.hosts.clone();
        for h in hosts {
            if let Some(host) = self.host_mut(h) {
                host.set_telemetry(telemetry.clone());
            }
        }
        self.sim.set_telemetry(telemetry);
    }

    /// The system-wide telemetry handle (disabled unless installed).
    pub fn telemetry(&self) -> &redep_telemetry::Telemetry {
        self.sim.telemetry()
    }

    /// Folds ground-truth gauges into the telemetry registry: the
    /// simulator's `net.truth.*` set, every host's `prism.h<id>.*` set, and
    /// the system-wide measured availability.
    pub fn publish_gauges(&self) {
        self.sim.publish_gauges();
        for &h in &self.hosts {
            if let Some(host) = self.host(h) {
                host.publish_gauges();
            }
        }
        self.telemetry()
            .metrics()
            .gauge("core.measured_availability")
            .set(self.measured_availability());
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// The underlying simulator, mutable (fault injection, fluctuation, …).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Advances the system by `span` of simulated time.
    pub fn run_for(&mut self, span: Duration) {
        self.sim.run_for(span);
    }

    /// All host ids.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// The master host, when one exists.
    pub fn master(&self) -> Option<HostId> {
        self.master
    }

    /// Component instance names by model id.
    pub fn component_names(&self) -> &BTreeMap<ComponentId, String> {
        &self.names
    }

    /// Borrows the Prism runtime of one host.
    pub fn host(&self, h: HostId) -> Option<&PrismHost> {
        self.sim.node_ref::<PrismHost>(h)
    }

    /// Mutably borrows the Prism runtime of one host.
    pub fn host_mut(&mut self, h: HostId) -> Option<&mut PrismHost> {
        self.sim.node_mut::<PrismHost>(h)
    }

    /// The *measured* availability so far: the fraction of emitted
    /// application events that were actually delivered, summed over all
    /// hosts (ground truth, independent of the model's estimate).
    pub fn measured_availability(&self) -> f64 {
        let mut emitted = 0;
        let mut received = 0;
        for &h in &self.hosts {
            if let Some(host) = self.host(h) {
                let stats = host.services().stats();
                emitted += stats.app_events_emitted;
                received += stats.app_events_received;
            }
        }
        if emitted == 0 {
            1.0
        } else {
            received as f64 / emitted as f64
        }
    }

    /// Where each component *actually* lives right now, by instance name
    /// (read from the running architectures, not from any model).
    pub fn actual_deployment(&self) -> BTreeMap<String, HostId> {
        let mut out = BTreeMap::new();
        for &h in &self.hosts {
            if let Some(host) = self.host(h) {
                for (name, ty) in host.architecture().component_inventory() {
                    if ty == WORKLOAD_TYPE {
                        out.insert(name, h);
                    }
                }
            }
        }
        out
    }

    /// The actual deployment translated back to model ids.
    pub fn actual_deployment_by_id(&self) -> Deployment {
        let by_name = self.actual_deployment();
        self.names
            .iter()
            .filter_map(|(id, name)| by_name.get(name).map(|h| (*id, *h)))
            .collect()
    }

    /// Rewrites every host's deployment directory from ground truth (the
    /// components actually attached to each running architecture), flushing
    /// events parked for components that turn out to live elsewhere. Called
    /// by the frameworks after reconciling an incomplete redeployment.
    pub fn resync_directories(&mut self) {
        let actual = self.actual_deployment();
        for h in self.hosts.clone() {
            if let Some(host) = self.host_mut(h) {
                host.resync_directory(actual.clone());
            }
        }
    }

    /// Drains every host's fresh [`redep_prism::RecoveryReport`]s — crash
    /// recoveries (checkpoint + journal replays) the frameworks have not
    /// consulted yet. Each report carries an explicit completed/not-completed
    /// verdict per operation that was in flight at the crash, so recovery
    /// decisions read durable facts instead of guessing from silence.
    pub fn drain_recovery_reports(&mut self) -> Vec<redep_prism::RecoveryReport> {
        let mut out = Vec::new();
        for h in self.hosts.clone() {
            if let Some(host) = self.host_mut(h) {
                out.extend(host.take_fresh_recovery_reports());
            }
        }
        out
    }
}

/// Output of [`assemble_hosts`]: configured hosts in model order plus the
/// component-name table.
type AssembledHosts = (Vec<(HostId, PrismHost)>, BTreeMap<ComponentId, String>);

/// Assembles one configured [`PrismHost`] per model host — the common
/// front half of [`SystemRuntime::build`] and [`ShardedRuntime::build`].
fn assemble_hosts(
    model: &DeploymentModel,
    deployment: &Deployment,
    config: &RuntimeConfig,
) -> Result<AssembledHosts, CoreError> {
    deployment.validate(model)?;

    // Component instance names must be unique: they are the middleware's
    // addressing scheme.
    let mut names: BTreeMap<ComponentId, String> = BTreeMap::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for c in model.components() {
        if !seen.insert(c.name().to_owned()) {
            return Err(CoreError::Build(format!(
                "duplicate component name '{}'",
                c.name()
            )));
        }
        names.insert(c.id(), c.name().to_owned());
    }

    // Interaction specs: one sender per logical link.
    let mut specs: BTreeMap<ComponentId, Vec<InteractionSpec>> = BTreeMap::new();
    for link in model.logical_links() {
        let (lo, hi) = (link.ends().lo(), link.ends().hi());
        if link.frequency() <= 0.0 {
            continue;
        }
        specs.entry(lo).or_default().push(InteractionSpec {
            peer: names[&hi].clone(),
            frequency: link.frequency(),
            event_size: link.event_size().max(1.0) as u64,
        });
    }

    let directory: BTreeMap<String, HostId> = deployment
        .iter()
        .map(|(c, h)| (names[&c].clone(), h))
        .collect();

    let hosts = model.host_ids();
    // One O(links) pass instead of a full link scan per host.
    let mut neighbor_lists: BTreeMap<HostId, BTreeSet<HostId>> = BTreeMap::new();
    for link in model.physical_links() {
        let (lo, hi) = (link.ends().lo(), link.ends().hi());
        neighbor_lists.entry(lo).or_default().insert(hi);
        neighbor_lists.entry(hi).or_default().insert(lo);
    }
    let routes = routing_tables(model);
    let master = config.master;
    // Even without a master, control traffic needs a mediation address;
    // unreachable mediation is simply dropped.
    let mediation = master.or_else(|| hosts.first().copied());
    let mut assembled = Vec::with_capacity(hosts.len());
    for &h in &hosts {
        let mut factory = ComponentFactory::new();
        factory.register(WORKLOAD_TYPE, WorkloadComponent::build);
        let host_config = HostConfig {
            deployer_host: mediation.unwrap_or(h),
            neighbors: neighbor_lists
                .remove(&h)
                .unwrap_or_default()
                .into_iter()
                .collect(),
            routes: routes.get(&h).cloned().unwrap_or_default(),
            monitor_window: config.monitor_window,
            epsilon: config.epsilon,
            stable_windows: config.stable_windows,
            buffer_during_migration: config.buffer_during_migration,
            move_deadline: config.move_deadline,
            max_move_attempts: config.max_move_attempts,
            ..HostConfig::default()
        };
        let mut prism = PrismHost::new(h, factory, host_config);
        if Some(h) == master {
            prism.enable_deployer();
        }
        for c in deployment.components_on(h) {
            let behavior = WorkloadComponent::new(specs.remove(&c).unwrap_or_default());
            prism
                .add_app_component(names[&c].clone(), behavior)
                .map_err(CoreError::Prism)?;
        }
        prism.set_initial_directory(directory.clone());
        assembled.push((h, prism));
    }
    Ok((assembled, names))
}

/// A running distributed system on the **sharded** conservative-PDES
/// simulator ([`ShardedSimulator`]): the same per-host Prism middleware as
/// [`SystemRuntime`], but the event loop is partitioned over shards and can
/// run on multiple threads — and is deterministic across both counts.
///
/// Used by the scale experiments (thousands of hosts); the frameworks'
/// adaptation loops still run on [`SystemRuntime`], whose single-queue
/// simulator supports runtime topology edits and fluctuation models.
pub struct ShardedRuntime {
    sim: ShardedSimulator,
    hosts: Vec<HostId>,
    master: Option<HostId>,
    names: BTreeMap<ComponentId, String>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("hosts", &self.hosts.len())
            .field("components", &self.names.len())
            .field("shards", &self.sim.plan().shards())
            .finish()
    }
}

impl ShardedRuntime {
    /// Assembles and starts a sharded runtime for `model` deployed as
    /// `deployment`, partitioned into `shards` shards.
    ///
    /// # Errors
    ///
    /// Same contract as [`SystemRuntime::build`].
    pub fn build(
        model: &DeploymentModel,
        deployment: &Deployment,
        config: &RuntimeConfig,
        shards: usize,
    ) -> Result<Self, CoreError> {
        let (assembled, names) = assemble_hosts(model, deployment, config)?;
        let topo = NetworkTopology::from_model(model);
        let mut sim = ShardedSimulator::new(config.seed, &topo, shards);
        let mut hosts = Vec::with_capacity(assembled.len());
        for (h, prism) in assembled {
            hosts.push(h);
            sim.add_host(h, prism);
        }
        Ok(ShardedRuntime {
            sim,
            hosts,
            master: config.master,
            names,
        })
    }

    /// Installs per-shard telemetry: each Prism host journals into its
    /// shard's handle, so the merged export
    /// ([`ShardedSimulator::export_merged_jsonl`]) interleaves middleware
    /// and network records in one global order.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one handle per shard is given.
    pub fn set_telemetry(&mut self, handles: Vec<redep_telemetry::Telemetry>) {
        for &h in &self.hosts.clone() {
            let shard = self.sim.plan().shard_of(h);
            let telemetry = handles[shard].clone();
            if let Some(host) = self.host_mut(h) {
                host.set_telemetry(telemetry);
            }
        }
        self.sim.set_telemetry(handles);
    }

    /// The underlying sharded simulator.
    pub fn sim(&self) -> &ShardedSimulator {
        &self.sim
    }

    /// The underlying sharded simulator, mutable (fault plans, …).
    pub fn sim_mut(&mut self) -> &mut ShardedSimulator {
        &mut self.sim
    }

    /// Advances the system by `span` of simulated time on up to `threads`
    /// OS threads. Returns the number of events processed.
    pub fn run_for(&mut self, span: Duration, threads: usize) -> u64 {
        let deadline = self.sim.now() + span;
        self.sim.run_until(deadline, threads)
    }

    /// All host ids.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// The master host, when one exists.
    pub fn master(&self) -> Option<HostId> {
        self.master
    }

    /// Component instance names by model id.
    pub fn component_names(&self) -> &BTreeMap<ComponentId, String> {
        &self.names
    }

    /// Borrows the Prism runtime of one host.
    pub fn host(&self, h: HostId) -> Option<&PrismHost> {
        self.sim.node_ref::<PrismHost>(h)
    }

    /// Mutably borrows the Prism runtime of one host.
    pub fn host_mut(&mut self, h: HostId) -> Option<&mut PrismHost> {
        self.sim.node_mut::<PrismHost>(h)
    }

    /// The *measured* availability so far — same definition as
    /// [`SystemRuntime::measured_availability`].
    pub fn measured_availability(&self) -> f64 {
        let mut emitted = 0;
        let mut received = 0;
        for &h in &self.hosts {
            if let Some(host) = self.host(h) {
                let stats = host.services().stats();
                emitted += stats.app_events_emitted;
                received += stats.app_events_received;
            }
        }
        if emitted == 0 {
            1.0
        } else {
            received as f64 / emitted as f64
        }
    }
}

/// Computes per-host next-hop routing tables over the model's physical
/// topology (BFS shortest paths). Entry `tables[h][d] = n` means host `h`
/// relays frames for `d` through its neighbor `n`; direct neighbors are
/// omitted (they need no relay).
fn routing_tables(model: &DeploymentModel) -> BTreeMap<HostId, BTreeMap<HostId, HostId>> {
    let hosts = model.host_ids();
    // Precompute adjacency once: `model.neighbors` scans every physical
    // link, so calling it per BFS visit makes this O(hosts² · links) —
    // minutes at a thousand dense hosts.
    let mut adjacency: BTreeMap<HostId, Vec<HostId>> = BTreeMap::new();
    for &h in &hosts {
        adjacency.insert(h, Vec::new());
    }
    for link in model.physical_links() {
        let (lo, hi) = (link.ends().lo(), link.ends().hi());
        adjacency.entry(lo).or_default().push(hi);
        adjacency.entry(hi).or_default().push(lo);
    }
    let mut tables: BTreeMap<HostId, BTreeMap<HostId, HostId>> = BTreeMap::new();
    for &src in &hosts {
        let mut parent: BTreeMap<HostId, HostId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([src]);
        let mut seen: BTreeSet<HostId> = BTreeSet::from([src]);
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[&u] {
                if seen.insert(v) {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        let neighbors: BTreeSet<HostId> = adjacency[&src].iter().copied().collect();
        let table = tables.entry(src).or_default();
        for &dst in &hosts {
            if dst == src || neighbors.contains(&dst) || !parent.contains_key(&dst) {
                continue;
            }
            // Walk back from dst until the node whose parent is src.
            let mut hop = dst;
            while parent[&hop] != src {
                hop = parent[&hop];
            }
            table.insert(dst, hop);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Generator, GeneratorConfig};
    use redep_netsim::SimTime;

    fn system() -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(3, 8).with_seed(2)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn builds_and_runs() {
        let (m, d) = system();
        let mut rt = SystemRuntime::build(&m, &d, &RuntimeConfig::default()).unwrap();
        rt.run_for(Duration::from_secs_f64(5.0));
        assert_eq!(rt.sim().now(), SimTime::from_secs_f64(5.0));
        // Workload flowed.
        let availability = rt.measured_availability();
        assert!((0.0..=1.0).contains(&availability));
        assert!(rt.sim().stats().sent > 0);
    }

    #[test]
    fn actual_deployment_matches_initial() {
        let (m, d) = system();
        let rt = SystemRuntime::build(&m, &d, &RuntimeConfig::default()).unwrap();
        assert_eq!(rt.actual_deployment_by_id(), d);
    }

    #[test]
    fn master_runs_the_deployer() {
        let (m, d) = system();
        let rt = SystemRuntime::build(&m, &d, &RuntimeConfig::default()).unwrap();
        let master = rt.master().unwrap();
        assert!(rt.host(master).unwrap().is_deployer());
        for &h in rt.hosts() {
            if h != master {
                assert!(!rt.host(h).unwrap().is_deployer());
            }
        }
    }

    #[test]
    fn decentralized_runtime_has_no_deployer_anywhere() {
        let (m, d) = system();
        let cfg = RuntimeConfig {
            master: None,
            ..RuntimeConfig::default()
        };
        let rt = SystemRuntime::build(&m, &d, &cfg).unwrap();
        // master() falls back to the first host for mediation addressing,
        // but no deployer component exists.
        for &h in rt.hosts() {
            assert!(!rt.host(h).unwrap().is_deployer());
        }
    }

    #[test]
    fn sharded_runtime_is_shard_and_thread_count_invariant() {
        let (m, d) = system();
        let run = |shards: usize, threads: usize| {
            let mut rt = ShardedRuntime::build(&m, &d, &RuntimeConfig::default(), shards).unwrap();
            rt.set_telemetry(
                (0..shards)
                    .map(|_| redep_telemetry::Telemetry::default())
                    .collect(),
            );
            let events = rt.run_for(Duration::from_secs_f64(5.0), threads);
            assert!(events > 0);
            (
                rt.sim().export_merged_jsonl(),
                rt.sim().stats(),
                rt.measured_availability(),
            )
        };
        let reference = run(1, 1);
        assert!(!reference.0.is_empty());
        assert_eq!(run(2, 1), reference, "diverged at 2 shards");
        assert_eq!(run(2, 2), reference, "diverged at 2 threads");
        assert_eq!(run(3, 2), reference, "diverged at 3 shards / 2 threads");
    }

    #[test]
    fn sharded_runtime_carries_workload() {
        let (m, d) = system();
        let mut rt = ShardedRuntime::build(&m, &d, &RuntimeConfig::default(), 2).unwrap();
        rt.run_for(Duration::from_secs_f64(5.0), 2);
        let availability = rt.measured_availability();
        assert!((0.0..=1.0).contains(&availability));
        assert!(rt.sim().stats().sent > 0);
        assert_eq!(rt.hosts().len(), 3);
    }

    #[test]
    fn duplicate_component_names_are_rejected() {
        let mut m = DeploymentModel::new();
        let h = m.add_host("h").unwrap();
        let a = m.add_component("same").unwrap();
        let b = m.add_component("same").unwrap();
        let d: Deployment = [(a, h), (b, h)].into_iter().collect();
        assert!(matches!(
            SystemRuntime::build(&m, &d, &RuntimeConfig::default()),
            Err(CoreError::Build(_))
        ));
    }

    #[test]
    fn incomplete_deployment_is_rejected() {
        let (m, _) = system();
        assert!(SystemRuntime::build(&m, &Deployment::new(), &RuntimeConfig::default()).is_err());
    }
}
