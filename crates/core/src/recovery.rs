//! What a framework does when a redeployment does not finish cleanly.
//!
//! The paper's target environments — fluctuating wireless links, hosts that
//! crash and restart — make incomplete redeployments a normal outcome, not
//! an exceptional one. A framework that errors out of its improvement loop
//! on the first unfinished move stalls exactly when it is needed most.
//! [`RecoveryPolicy`] makes the reaction explicit: re-issue the unfinished
//! moves a bounded number of times, then *reconcile* — accept the placement
//! the running system actually reached, fold it back into the model, and
//! resynchronize every host's directory so the next cycle starts from
//! consistent (if degraded) state.

/// Policy applied when an effected redeployment is still unfinished after
/// its wait budget (some moves failed or remained in flight).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryPolicy {
    /// Fail the cycle with
    /// [`CoreError::RedeploymentTimeout`](crate::CoreError::RedeploymentTimeout)
    /// — the pre-hardening behavior, kept for experiments that want to
    /// *observe* stalls rather than survive them.
    Abort,
    /// Re-effect the unfinished moves up to `max_effect_attempts` times
    /// (each re-effect opens a fresh redeployment epoch), then reconcile
    /// the model with the running system's actual placement and report a
    /// degraded-but-consistent cycle instead of an error.
    Reconcile {
        /// Total `effect` attempts per cycle (the initial effect counts as
        /// the first attempt).
        max_effect_attempts: u32,
    },
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::Reconcile {
            max_effect_attempts: 2,
        }
    }
}

impl RecoveryPolicy {
    /// Total effect attempts this policy allows per cycle (1 under
    /// [`RecoveryPolicy::Abort`]).
    pub fn effect_attempts(self) -> u32 {
        match self {
            RecoveryPolicy::Abort => 1,
            RecoveryPolicy::Reconcile {
                max_effect_attempts,
            } => max_effect_attempts.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reconciles_with_a_retry() {
        assert_eq!(
            RecoveryPolicy::default(),
            RecoveryPolicy::Reconcile {
                max_effect_attempts: 2
            }
        );
        assert_eq!(RecoveryPolicy::default().effect_attempts(), 2);
    }

    #[test]
    fn attempt_floor_is_one() {
        assert_eq!(RecoveryPolicy::Abort.effect_attempts(), 1);
        assert_eq!(
            RecoveryPolicy::Reconcile {
                max_effect_attempts: 0
            }
            .effect_attempts(),
            1
        );
    }
}
