//! What a framework does when a redeployment does not finish cleanly.
//!
//! The paper's target environments — fluctuating wireless links, hosts that
//! crash and restart — make incomplete redeployments a normal outcome, not
//! an exceptional one. A framework that errors out of its improvement loop
//! on the first unfinished move stalls exactly when it is needed most.
//! [`RecoveryPolicy`] makes the reaction explicit: re-issue the unfinished
//! moves a bounded number of times, then *reconcile* — accept the placement
//! the running system actually reached, fold it back into the model, and
//! resynchronize every host's directory so the next cycle starts from
//! consistent (if degraded) state.

/// Policy applied when an effected redeployment is still unfinished after
/// its wait budget (some moves failed or remained in flight).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryPolicy {
    /// Fail the cycle with
    /// [`CoreError::RedeploymentTimeout`](crate::CoreError::RedeploymentTimeout)
    /// — the pre-hardening behavior, kept for experiments that want to
    /// *observe* stalls rather than survive them.
    Abort,
    /// Re-effect the unfinished moves up to `max_effect_attempts` times
    /// (each re-effect opens a fresh redeployment epoch), then reconcile
    /// the model with the running system's actual placement and report a
    /// degraded-but-consistent cycle instead of an error.
    ///
    /// `max_effect_attempts` must be at least 1 — the initial effect *is*
    /// the first attempt, so 0 is unsatisfiable. Build through
    /// [`RecoveryPolicy::reconcile`] to reject 0 at construction;
    /// [`RecoveryPolicy::effect_attempts`] additionally `debug_assert`s on
    /// a 0 smuggled in through the struct literal, and floors it to 1 in
    /// release builds (the historical behavior, now loud instead of
    /// silent).
    Reconcile {
        /// Total `effect` attempts per cycle (the initial effect counts as
        /// the first attempt).
        max_effect_attempts: u32,
    },
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::Reconcile {
            max_effect_attempts: 2,
        }
    }
}

impl RecoveryPolicy {
    /// Builds a [`RecoveryPolicy::Reconcile`], rejecting the unsatisfiable
    /// `max_effect_attempts == 0` at construction.
    ///
    /// # Panics
    ///
    /// Panics when `max_effect_attempts` is 0: the initial effect counts as
    /// the first attempt, so a budget of 0 cannot be honored and would
    /// otherwise be silently treated as 1.
    pub fn reconcile(max_effect_attempts: u32) -> Self {
        assert!(
            max_effect_attempts >= 1,
            "Reconcile requires max_effect_attempts >= 1 (the initial effect \
             is the first attempt; 0 would silently behave as 1)"
        );
        RecoveryPolicy::Reconcile {
            max_effect_attempts,
        }
    }

    /// Total effect attempts this policy allows per cycle (1 under
    /// [`RecoveryPolicy::Abort`]).
    pub fn effect_attempts(self) -> u32 {
        match self {
            RecoveryPolicy::Abort => 1,
            RecoveryPolicy::Reconcile {
                max_effect_attempts,
            } => {
                debug_assert!(
                    max_effect_attempts >= 1,
                    "Reconcile {{ max_effect_attempts: 0 }} is a \
                     misconfiguration; use RecoveryPolicy::reconcile(n)"
                );
                max_effect_attempts.max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reconciles_with_a_retry() {
        assert_eq!(
            RecoveryPolicy::default(),
            RecoveryPolicy::Reconcile {
                max_effect_attempts: 2
            }
        );
        assert_eq!(RecoveryPolicy::default().effect_attempts(), 2);
    }

    #[test]
    fn attempt_floor_is_one_for_abort() {
        assert_eq!(RecoveryPolicy::Abort.effect_attempts(), 1);
    }

    #[test]
    fn reconcile_constructor_accepts_positive_budgets() {
        assert_eq!(
            RecoveryPolicy::reconcile(3),
            RecoveryPolicy::Reconcile {
                max_effect_attempts: 3
            }
        );
        assert_eq!(RecoveryPolicy::reconcile(1).effect_attempts(), 1);
    }

    #[test]
    #[should_panic(expected = "max_effect_attempts >= 1")]
    fn reconcile_constructor_rejects_zero() {
        let _ = RecoveryPolicy::reconcile(0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "misconfiguration")]
    fn zero_attempts_smuggled_via_literal_is_loud() {
        let _ = RecoveryPolicy::Reconcile {
            max_effect_attempts: 0,
        }
        .effect_attempts();
    }
}
