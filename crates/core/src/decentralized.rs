//! The decentralized instantiation (Figure 3): no single point of control.
//!
//! Each host runs a Local Monitor and Local Effector (its Prism admin), and
//! maintains a Decentralized Model covering only the hosts it is *aware* of.
//! The Decentralized Algorithm is DecAp's auction protocol, whose bids are
//! computed strictly from per-host partial views; the Decentralized Analyzer
//! uses a distributed-voting protocol to decide whether to adopt the
//! auctions' outcome; effecting happens pairwise between local effectors
//! ("Local Effectors, which collaborate in performing the redeployment").

use crate::error::CoreError;
use crate::recovery::RecoveryPolicy;
use crate::runtime::{RuntimeConfig, SystemRuntime};
use redep_algorithms::{
    CoordinationProtocol, DecApAlgorithm, HierarchicalConfig, MonitoringExchange,
    RedeploymentAlgorithm, VotingProtocol,
};
use redep_desi::{MiddlewareAdapter, SystemData};
use redep_model::{Availability, AwarenessGraph, Deployment, DeploymentModel, HostId, Objective};
use redep_netsim::Duration;
use redep_prism::MonitoringSnapshot;
use redep_telemetry::{trace::DOMAIN_FRAMEWORK, SpanIdGen, TraceCtx};

/// The outcome of one decentralized cycle.
#[derive(Clone, PartialEq, Debug)]
pub struct DecentralizedCycleReport {
    /// Simulated time at the end of the cycle (seconds).
    pub time_secs: f64,
    /// Hosts whose local monitors produced a snapshot this cycle.
    pub hosts_reporting: usize,
    /// Availability (on the synchronized model) before the auctions.
    pub availability_before: f64,
    /// Availability of the auctions' proposed deployment.
    pub availability_proposed: f64,
    /// Votes for adopting the proposal vs. keeping the current deployment.
    pub votes_for: usize,
    /// Whether the proposal was adopted and effected.
    pub adopted: bool,
    /// Component moves performed.
    pub moves: usize,
    /// Whether every adopted move landed in the running system (vacuously
    /// true when nothing was adopted).
    pub completed: bool,
    /// Whether an incomplete redeployment was reconciled: the synchronized
    /// model was set to the placement actually reached and every host
    /// directory was rewritten from ground truth.
    pub reconciled: bool,
    /// Measured availability (ground truth) up to the end of the cycle.
    pub measured_availability: f64,
}

/// The complete decentralized framework.
pub struct DecentralizedFramework {
    runtime: SystemRuntime,
    system: SystemData,
    awareness: AwarenessGraph,
    adapter: MiddlewareAdapter,
    recovery: RecoveryPolicy,
    /// Allocates the per-cycle trace roots and per-move span ids.
    tracer: SpanIdGen,
}

impl std::fmt::Debug for DecentralizedFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecentralizedFramework")
            .field("runtime", &self.runtime)
            .field("mean_awareness", &self.awareness.mean_awareness())
            .finish()
    }
}

impl DecentralizedFramework {
    /// Assembles the framework; awareness defaults to physical connectivity
    /// (each host knows its direct neighbors), per the paper.
    ///
    /// # Errors
    ///
    /// Propagates runtime assembly failures.
    pub fn new(
        model: DeploymentModel,
        initial: Deployment,
        runtime_config: &RuntimeConfig,
    ) -> Result<Self, CoreError> {
        Self::with_awareness(
            model.clone(),
            initial,
            runtime_config,
            AwarenessGraph::from_connectivity(&model),
        )
    }

    /// Assembles the framework with an explicit awareness graph (used by the
    /// E9 awareness sweep).
    ///
    /// # Errors
    ///
    /// Propagates runtime assembly failures.
    pub fn with_awareness(
        model: DeploymentModel,
        initial: Deployment,
        runtime_config: &RuntimeConfig,
        awareness: AwarenessGraph,
    ) -> Result<Self, CoreError> {
        let config = RuntimeConfig {
            master: None,
            ..runtime_config.clone()
        };
        let runtime = SystemRuntime::build(&model, &initial, &config)?;
        // The adapter is only used for its snapshot-application logic; the
        // address is irrelevant in decentralized mode.
        let adapter = MiddlewareAdapter::new(HostId::new(0));
        Ok(DecentralizedFramework {
            runtime,
            system: SystemData::new(model, initial),
            awareness,
            adapter,
            recovery: RecoveryPolicy::default(),
            tracer: SpanIdGen::new(DOMAIN_FRAMEWORK, 0),
        })
    }

    /// Sets the reaction to adopted moves that do not land cleanly
    /// (default: [`RecoveryPolicy::Reconcile`] with one re-request pass).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The running system.
    pub fn runtime(&self) -> &SystemRuntime {
        &self.runtime
    }

    /// The running system, mutable.
    pub fn runtime_mut(&mut self) -> &mut SystemRuntime {
        &mut self.runtime
    }

    /// The synchronized model (the union of per-host knowledge; every
    /// *decision* is still restricted to per-host awareness views).
    pub fn system(&self) -> &SystemData {
        &self.system
    }

    /// The awareness graph.
    pub fn awareness(&self) -> &AwarenessGraph {
        &self.awareness
    }

    /// Runs the system without analysis.
    pub fn advance(&mut self, span: Duration) {
        self.runtime.run_for(span);
    }

    /// Drains fresh crash-recovery reports (durable checkpoint + journal
    /// replays), journals each as a `core.recovery` crash-replay event, and
    /// returns them so callers can consult the per-operation verdicts.
    fn drain_recoveries(&mut self, cycle_ctx: TraceCtx) -> Vec<redep_prism::RecoveryReport> {
        let reports = self.runtime.drain_recovery_reports();
        let telemetry = self.runtime.telemetry().clone();
        let now_us = self.runtime.sim().now().as_micros();
        for report in &reports {
            // Timestamped at the drain (the restart itself happened outside
            // this cycle's span); the restart instant rides in a field.
            telemetry
                .event("core.recovery", now_us)
                .field("mode", "crash-replay")
                .field("recovered_at_us", report.at.as_micros())
                .field("host", report.host.raw())
                .field("checkpoint_seq", report.checkpoint_seq)
                .field("replayed", report.replayed)
                .field("state_equiv", report.state_equiv)
                .field("verdicts", report.verdicts.len())
                .field("completed", report.completed())
                .trace(self.tracer.child(&cycle_ctx))
                .emit();
        }
        reports
    }

    /// Collects the latest snapshot of every host's local monitor.
    fn collect_snapshots(&self) -> Vec<MonitoringSnapshot> {
        self.runtime
            .hosts()
            .iter()
            .filter_map(|&h| self.runtime.host(h))
            .filter_map(|host| host.admin().last_snapshot().cloned())
            .collect()
    }

    /// Runs one decentralized cycle:
    ///
    /// 1. advance the system for `monitor_for` (local monitors accumulate),
    /// 2. synchronize models: each host's snapshot updates the shared
    ///    parameters it is authoritative for,
    /// 3. run the DecAp auctions over awareness-restricted views,
    /// 4. vote: each host compares current vs. proposed on its own partial
    ///    view; the proposal is adopted on a strict majority,
    /// 5. effect adopted moves pairwise between local effectors, wait up to
    ///    `effect_wait` per attempt, and recover per the [`RecoveryPolicy`]:
    ///    re-request stragglers from wherever they actually live, and
    ///    finally reconcile the synchronized model (and every directory)
    ///    with the placement actually reached.
    ///
    /// # Errors
    ///
    /// Propagates adapter/algorithm failures;
    /// [`CoreError::RedeploymentTimeout`] only under
    /// [`RecoveryPolicy::Abort`] when moves do not complete.
    pub fn cycle(
        &mut self,
        objective: &dyn Objective,
        monitor_for: Duration,
        effect_wait: Duration,
    ) -> Result<DecentralizedCycleReport, CoreError> {
        // One trace per cycle, rooted in the `core.decentralized.cycle`
        // span emitted at the end.
        let cycle_start = self.runtime.sim().now();
        let cycle_ctx = self.tracer.root();
        self.runtime.run_for(monitor_for);
        // Moves whose landing a restarted host *proved* by replaying the
        // migrant's attach record from its durable journal. Seeded from
        // crashes during the monitoring phase, extended during effecting.
        let mut recovered_landed: std::collections::BTreeSet<String> = self
            .drain_recoveries(cycle_ctx)
            .iter()
            .flat_map(|r| r.completed_moves().map(str::to_owned))
            .collect();
        let snapshots = self.collect_snapshots();
        let hosts_reporting = snapshots.len();
        self.adapter
            .apply_snapshots(&mut self.system, &snapshots)
            .map_err(CoreError::Desi)?;

        let model = self.system.model().clone();
        let current = self.system.deployment().clone();
        let availability_before = Availability.evaluate(&model, &current);

        // Hierarchical auctions with gossip exchange: one auction per
        // super-node cluster per round (rotating the conducting host, so
        // wide awareness no longer hands every auction to the same host)
        // while the monitoring layer forwards host inventories to aware
        // peers between rounds, widening partial views instead of starving
        // poorly connected hosts.
        let result = DecApAlgorithm::new()
            .with_awareness(self.awareness.clone())
            .with_exchange(MonitoringExchange::Gossip { hops: 1 })
            .with_hierarchy(HierarchicalConfig::default())
            .run(&model, objective, model.constraints(), Some(&current))?;
        let proposed = result.deployment.clone();
        let availability_proposed = Availability.evaluate(&model, &proposed);

        // Distributed voting: each host scores both alternatives on its own
        // partial view and votes for the better one.
        let mut alternatives: Vec<Vec<(HostId, f64)>> = vec![Vec::new(), Vec::new()];
        for &h in self.runtime.hosts() {
            for (i, candidate) in [&current, &proposed].into_iter().enumerate() {
                if let Ok(view) = self.awareness.partial_view(&model, candidate, h) {
                    let score = Availability.evaluate(&view.model, &view.deployment);
                    alternatives[i].push((h, score));
                }
            }
        }
        let auction_end = self.runtime.sim().now().as_micros();
        let choice = VotingProtocol.decide(&alternatives);
        let votes_for = {
            // Count how many hosts strictly prefer the proposal (for the report).
            let mut n = 0;
            for &h in self.runtime.hosts() {
                let a = alternatives[0]
                    .iter()
                    .find(|(x, _)| *x == h)
                    .map(|(_, s)| *s);
                let b = alternatives[1]
                    .iter()
                    .find(|(x, _)| *x == h)
                    .map(|(_, s)| *s);
                if let (Some(a), Some(b)) = (a, b) {
                    if b > a {
                        n += 1;
                    }
                }
            }
            n
        };
        let adopted = choice == Some(1) && proposed != current;
        self.runtime
            .telemetry()
            .event("core.decentralized.vote", auction_end)
            .field("hosts_reporting", hosts_reporting)
            .field("votes_for", votes_for)
            .field("adopted", adopted)
            .field("availability_before", availability_before)
            .field("availability_proposed", availability_proposed)
            .trace(self.tracer.child(&cycle_ctx))
            .emit();

        let mut moves = 0;
        let mut completed = true;
        let mut reconciled = false;
        if adopted {
            let effect_start = self.runtime.sim().now();
            let redeploy_ctx = self.tracer.child(&cycle_ctx);
            let telemetry = self.runtime.telemetry().clone();
            let measured_before = self.runtime.measured_availability();
            let names = self.runtime.component_names().clone();
            let migrations = current.diff(&proposed);
            moves = migrations.len();
            // One span per pairwise move: the `.open` marker and the settle
            // record after the landing loop share a span id, and the
            // request/transfer hops journal as its children.
            let mut move_ctxs: std::collections::BTreeMap<String, TraceCtx> =
                std::collections::BTreeMap::new();
            // Update every host's directory (the paper's model sync between
            // connected hosts, collapsed to one pass), then let destination
            // effectors request their components from the holders.
            for m in &migrations {
                let name = names
                    .get(&m.component)
                    .ok_or_else(|| CoreError::Build(format!("unknown component {}", m.component)))?
                    .clone();
                for &h in &self.runtime.hosts().to_vec() {
                    if let Some(host) = self.runtime.host_mut(h) {
                        host.update_directory(name.clone(), m.to);
                    }
                }
                if let Some(from) = m.from {
                    let ctx = redeploy_ctx.child(self.tracer.next_id());
                    telemetry
                        .event("core.move.open", effect_start.as_micros())
                        .field("component", name.clone())
                        .field("from", from.raw())
                        .field("to", m.to.raw())
                        .trace(ctx)
                        .emit();
                    move_ctxs.insert(name.clone(), ctx);
                    if let Some(host) = self.runtime.host_mut(m.to) {
                        host.request_component_traced(&name, from, Some(ctx));
                    }
                }
            }
            let landed = |rt: &SystemRuntime, m: &redep_model::Migration| {
                let name = &names[&m.component];
                rt.host(m.to)
                    .is_some_and(|h| h.architecture().contains_component(name))
            };
            // Wait for the moves to land; re-request stragglers from their
            // *actual* holders between attempts (a crashed or partitioned
            // holder may have left the original pairwise request in limbo).
            let step = Duration::from_millis(500);
            let mut done = false;
            for attempt in 1..=self.recovery.effect_attempts() {
                if attempt > 1 {
                    // Consult durable recovery verdicts before chasing: a
                    // destination that crashed and replayed the migrant's
                    // attach from its journal verifiably holds it, so a
                    // re-request would only spawn a duplicate transfer.
                    recovered_landed.extend(
                        self.drain_recoveries(cycle_ctx)
                            .iter()
                            .flat_map(|r| r.completed_moves().map(str::to_owned)),
                    );
                    let actual = self.runtime.actual_deployment();
                    for m in &migrations {
                        if landed(&self.runtime, m) {
                            continue;
                        }
                        let name = names[&m.component].clone();
                        if recovered_landed.contains(&name) {
                            continue;
                        }
                        if let Some(&holder) = actual.get(&name) {
                            if holder != m.to {
                                // Re-requests carry the move's own span, so
                                // every straggler chase chains back to the
                                // move it serves.
                                let ctx = move_ctxs.get(&name).copied();
                                if let Some(host) = self.runtime.host_mut(m.to) {
                                    host.request_component_traced(&name, holder, ctx);
                                }
                            }
                        }
                    }
                }
                let mut waited = Duration::ZERO;
                while waited < effect_wait {
                    self.runtime.run_for(step);
                    waited = waited + step;
                    done = migrations.iter().all(|m| landed(&self.runtime, m));
                    if done {
                        break;
                    }
                }
                if done {
                    break;
                }
            }
            completed = done;
            // Settle every move span: landed moves confirm, stragglers are
            // abandoned (the reconcile below follows reality for them), so
            // no journal ends with an open move span.
            let settle_end = self.runtime.sim().now();
            for m in &migrations {
                let name = &names[&m.component];
                let Some(ctx) = move_ctxs.get(name).copied() else {
                    continue;
                };
                let outcome = if landed(&self.runtime, m) {
                    "confirmed"
                } else {
                    "abandoned"
                };
                telemetry
                    .span(
                        "core.move",
                        effect_start.as_micros(),
                        settle_end.as_micros(),
                    )
                    .field("component", name.clone())
                    .field("outcome", outcome)
                    .trace(ctx)
                    .emit();
            }
            self.runtime
                .telemetry()
                .span(
                    "core.redeployment",
                    effect_start.as_micros(),
                    self.runtime.sim().now().as_micros(),
                )
                .field("moves", moves)
                .field("completed", done)
                .field("measured_before", measured_before)
                .field("measured_after", self.runtime.measured_availability())
                .trace(redeploy_ctx)
                .emit();
            if done {
                self.system.set_deployment(proposed);
            } else {
                let stuck: Vec<String> = migrations
                    .iter()
                    .filter(|m| !landed(&self.runtime, m))
                    .map(|m| names[&m.component].clone())
                    .collect();
                match self.recovery {
                    RecoveryPolicy::Abort => {
                        return Err(CoreError::RedeploymentTimeout(stuck));
                    }
                    RecoveryPolicy::Reconcile { .. } => {
                        // Follow reality: the synchronized model adopts the
                        // placement actually reached, and every host's
                        // directory is rewritten from ground truth so the
                        // next cycle routes (and auctions) consistently.
                        let actual = self.runtime.actual_deployment_by_id();
                        self.runtime.resync_directories();
                        self.system.set_deployment(actual);
                        reconciled = true;
                        self.runtime
                            .telemetry()
                            .event("core.recovery", self.runtime.sim().now().as_micros())
                            .field("mode", "reconcile")
                            .field("stuck_moves", stuck.len())
                            .field(
                                "measured_availability",
                                self.runtime.measured_availability(),
                            )
                            .trace(self.tracer.child(&cycle_ctx))
                            .emit();
                    }
                }
            }
        }

        // A component shipped in an earlier cycle can land after that cycle
        // reconciled without it (reliable channels retransmit through long
        // outages). Fold such late arrivals back in before reporting — even
        // after an in-cycle reconcile, since a transfer can land between the
        // reconcile and the end of the cycle's bookkeeping.
        {
            let actual = self.runtime.actual_deployment_by_id();
            if self.system.deployment() != &actual {
                self.runtime.resync_directories();
                self.system.set_deployment(actual);
                reconciled = true;
                self.runtime
                    .telemetry()
                    .event("core.recovery", self.runtime.sim().now().as_micros())
                    .field("mode", "drift")
                    .trace(self.tracer.child(&cycle_ctx))
                    .emit();
            }
        }

        let measured_availability = self.runtime.measured_availability();
        let model_matches_actual =
            self.system.deployment() == &self.runtime.actual_deployment_by_id();
        self.runtime
            .telemetry()
            .span(
                "core.decentralized.cycle",
                cycle_start.as_micros(),
                self.runtime.sim().now().as_micros(),
            )
            .field("hosts_reporting", hosts_reporting)
            .field("adopted", adopted)
            .field("completed", completed)
            .field("reconciled", reconciled)
            .field("measured_availability", measured_availability)
            .field("model_matches_actual", model_matches_actual)
            .trace(cycle_ctx)
            .emit();
        Ok(DecentralizedCycleReport {
            time_secs: self.runtime.sim().now().as_secs_f64(),
            hosts_reporting,
            availability_before,
            availability_proposed,
            votes_for,
            adopted,
            moves,
            completed,
            reconciled,
            measured_availability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Generator, GeneratorConfig};

    fn framework() -> DecentralizedFramework {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(21)).unwrap();
        DecentralizedFramework::new(s.model, s.initial, &RuntimeConfig::default()).unwrap()
    }

    #[test]
    fn cycle_reports_consistent_numbers() {
        let mut fw = framework();
        let report = fw
            .cycle(
                &Availability,
                Duration::from_secs_f64(6.0),
                Duration::from_secs_f64(60.0),
            )
            .unwrap();
        assert!(report.hosts_reporting <= fw.runtime().hosts().len());
        assert!((0.0..=1.0).contains(&report.availability_before));
        assert!((0.0..=1.0).contains(&report.availability_proposed));
        assert!(report.availability_proposed >= report.availability_before - 1e-9);
        if report.adopted {
            assert!(report.moves > 0);
        }
    }

    #[test]
    fn adopted_moves_land_in_the_running_system() {
        let mut fw = framework();
        for _ in 0..4 {
            let report = fw
                .cycle(
                    &Availability,
                    Duration::from_secs_f64(6.0),
                    Duration::from_secs_f64(120.0),
                )
                .unwrap();
            if report.adopted {
                let actual = fw.runtime().actual_deployment_by_id();
                assert_eq!(&actual, fw.system().deployment());
                return;
            }
        }
        // Not adopting anything is legitimate (already near-optimal);
        // the test then only checks the cycles ran.
    }

    #[test]
    fn zero_awareness_never_adopts() {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(22)).unwrap();
        let isolated = AwarenessGraph::isolated(s.model.host_ids());
        let mut fw = DecentralizedFramework::with_awareness(
            s.model,
            s.initial,
            &RuntimeConfig::default(),
            isolated,
        )
        .unwrap();
        let report = fw
            .cycle(
                &Availability,
                Duration::from_secs_f64(6.0),
                Duration::from_secs_f64(30.0),
            )
            .unwrap();
        assert!(!report.adopted);
        assert_eq!(report.moves, 0);
    }
}
