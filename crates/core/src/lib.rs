//! # redep-core
//!
//! The **deployment improvement framework** of Malek, Beckman, Mikic-Rakic &
//! Medvidovic (DSN 2004): a structure of six cooperating components —
//! Model, Algorithm, Analyzer, Monitor, Effector, and User Input — that
//! continuously improves a distributed system's deployment architecture via
//!
//! 1. **active system monitoring**,
//! 2. **estimation of the improved deployment architecture**, and
//! 3. **redeployment** of (parts of) the system.
//!
//! The framework components map onto the workspace crates as follows
//! (Figure 1 → code):
//!
//! | Framework component | Realized by |
//! |---|---|
//! | Model      | [`redep_desi::SystemData`] over [`redep_model::DeploymentModel`] |
//! | Algorithm  | [`redep_algorithms`] (pluggable, via [`redep_desi::AlgorithmContainer`]) |
//! | Analyzer   | [`CentralizedAnalyzer`] / the voting analyzer in [`decentralized`] |
//! | Monitor    | [`redep_prism::monitor`] (platform-dependent) + [`redep_prism::StabilityGauge`] (platform-independent), pulled by [`redep_desi::MiddlewareAdapter`] |
//! | Effector   | [`redep_prism::admin`] (platform-dependent) driven by [`redep_desi::MiddlewareAdapter`] (platform-independent) |
//! | User Input | [`redep_model::adl`] documents and programmatic constraints |
//!
//! Two complete instantiations are provided, mirroring Figures 2 and 3:
//!
//! * [`CentralizedFramework`] — a Master Host with global knowledge
//!   (centralized model, master monitor/effector, centralized analyzer
//!   implementing the paper's §5.1 algorithm-selection policy and latency
//!   guard);
//! * [`DecentralizedFramework`] — per-host partial models bounded by an
//!   [`redep_model::AwarenessGraph`], the DecAp auction algorithm, a voting
//!   analyzer, and pairwise effecting between local effectors.
//!
//! [`scenario`] builds the paper's §1 motivating application (headquarters,
//! commander PDAs, troop PDAs) for the examples and experiments.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod centralized;
pub mod decentralized;
pub mod error;
pub mod recovery;
pub mod runtime;
pub mod scenario;

pub use analyzer::{AnalyzerConfig, AnalyzerDecision, CentralizedAnalyzer};
pub use centralized::{CentralizedFramework, CycleReport};
pub use decentralized::{DecentralizedCycleReport, DecentralizedFramework};
pub use error::CoreError;
pub use recovery::RecoveryPolicy;
pub use runtime::{RuntimeConfig, ShardedRuntime, SystemRuntime};
pub use scenario::{Scenario, ScenarioConfig};
