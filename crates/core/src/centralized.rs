//! The centralized instantiation (Figure 2): a Master Host with global
//! knowledge runs the Centralized Model, Analyzer and Algorithms (DeSi) and
//! the Master Monitor/Effector (the Prism deployer); every Slave Host runs
//! a Slave Monitor and Slave Effector (its Prism admin).

use crate::analyzer::{AnalyzerConfig, AnalyzerDecision, CentralizedAnalyzer};
use crate::error::CoreError;
use crate::recovery::RecoveryPolicy;
use crate::runtime::{RuntimeConfig, SystemRuntime};
use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, ExactAlgorithm, GeneticAlgorithm, RedeploymentAlgorithm,
    StochasticAlgorithm,
};
use redep_desi::{DeSi, MiddlewareAdapter};
use redep_model::{Deployment, DeploymentModel, Objective};
use redep_netsim::Duration;
use redep_telemetry::{trace::DOMAIN_FRAMEWORK, SpanIdGen, Telemetry};

/// The outcome of one monitoring/analysis/redeployment cycle.
#[derive(Clone, PartialEq, Debug)]
pub struct CycleReport {
    /// Simulated time at the end of the cycle (seconds).
    pub time_secs: f64,
    /// Monitoring snapshots pulled into the model this cycle.
    pub snapshots_applied: usize,
    /// The analyzer's decision, when analysis ran (it requires monitoring
    /// data from every host).
    pub decision: Option<AnalyzerDecision>,
    /// Whether an accepted redeployment completed within the cycle.
    pub redeployment_completed: bool,
    /// Moves the deployer gave up on this cycle, with their last failure
    /// reasons (empty when everything completed).
    pub failed_moves: Vec<(String, String)>,
    /// Whether an incomplete redeployment was reconciled: the model was
    /// synchronized to the placement the running system actually reached and
    /// every host directory was rewritten from ground truth. The cycle is
    /// then degraded but consistent.
    pub reconciled: bool,
    /// Measured availability (ground truth) up to the end of the cycle.
    pub measured_availability: f64,
}

/// The complete centralized framework: running system + DeSi + analyzer,
/// connected by the middleware adapter.
pub struct CentralizedFramework {
    runtime: SystemRuntime,
    desi: DeSi,
    adapter: MiddlewareAdapter,
    analyzer: CentralizedAnalyzer,
    recovery: RecoveryPolicy,
    telemetry: Telemetry,
    /// Allocates the per-cycle trace roots and framework-phase span ids.
    tracer: SpanIdGen,
}

impl std::fmt::Debug for CentralizedFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentralizedFramework")
            .field("runtime", &self.runtime)
            .finish()
    }
}

impl CentralizedFramework {
    /// Assembles the framework around a model and its initial deployment.
    ///
    /// The standard §5.1 algorithm suite (Exact, Stochastic, Avala, plus the
    /// genetic extension) is pre-registered; more can be added through
    /// [`CentralizedFramework::desi_mut`].
    ///
    /// # Errors
    ///
    /// Propagates runtime assembly failures. Requires a master host.
    pub fn new(
        model: DeploymentModel,
        initial: Deployment,
        runtime_config: &RuntimeConfig,
        analyzer_config: AnalyzerConfig,
    ) -> Result<Self, CoreError> {
        let runtime = SystemRuntime::build(&model, &initial, runtime_config)?;
        let master = runtime
            .master()
            .ok_or_else(|| CoreError::Build("centralized framework needs a master host".into()))?;
        let mut desi = DeSi::new(model, initial);
        desi.container_mut().register(ExactAlgorithm::new());
        desi.container_mut().register(StochasticAlgorithm::new());
        desi.container_mut().register(AvalaAlgorithm::new());
        desi.container_mut().register(GeneticAlgorithm::new());
        desi.container_mut().register(AnnealingAlgorithm::new());
        Ok(CentralizedFramework {
            runtime,
            desi,
            adapter: MiddlewareAdapter::new(master),
            analyzer: CentralizedAnalyzer::new(analyzer_config),
            recovery: RecoveryPolicy::default(),
            telemetry: Telemetry::disabled(),
            tracer: SpanIdGen::new(DOMAIN_FRAMEWORK, 0),
        })
    }

    /// Sets the reaction to redeployments that do not finish cleanly
    /// (default: [`RecoveryPolicy::Reconcile`] with one re-effect).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Installs one telemetry handle across the framework and the running
    /// system underneath it (see [`SystemRuntime::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.runtime.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The framework's telemetry handle (disabled unless installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The running system.
    pub fn runtime(&self) -> &SystemRuntime {
        &self.runtime
    }

    /// The running system, mutable (fault injection between cycles).
    pub fn runtime_mut(&mut self) -> &mut SystemRuntime {
        &mut self.runtime
    }

    /// The DeSi environment (model, results, views).
    pub fn desi(&self) -> &DeSi {
        &self.desi
    }

    /// The DeSi environment, mutable (registering algorithms, constraints).
    pub fn desi_mut(&mut self) -> &mut DeSi {
        &mut self.desi
    }

    /// The analyzer.
    pub fn analyzer(&self) -> &CentralizedAnalyzer {
        &self.analyzer
    }

    /// Runs the system without analysis (e.g. to warm up monitoring).
    pub fn advance(&mut self, span: Duration) {
        self.runtime.run_for(span);
    }

    /// Runs one full framework cycle:
    ///
    /// 1. advance the system for `monitor_for` (monitoring accumulates),
    /// 2. pull monitoring data into the centralized model (Master Monitor),
    /// 3. let the analyzer observe / select / run an algorithm,
    /// 4. effect an accepted result (Master Effector) and wait up to
    ///    `effect_wait` per attempt for it to settle,
    /// 5. recover from an unfinished redeployment per the
    ///    [`RecoveryPolicy`]: re-effect the remainder against ground truth,
    ///    and finally reconcile model and directories with the placement
    ///    actually reached, reporting a degraded-but-consistent cycle.
    ///
    /// Analysis is skipped (decision `None`) until every host has reported.
    ///
    /// # Errors
    ///
    /// Propagates adapter and analyzer failures;
    /// [`CoreError::RedeploymentTimeout`] only under
    /// [`RecoveryPolicy::Abort`] when an accepted redeployment does not
    /// complete within `effect_wait`.
    pub fn cycle(
        &mut self,
        objective: &dyn Objective,
        monitor_for: Duration,
        effect_wait: Duration,
    ) -> Result<CycleReport, CoreError> {
        // One trace per cycle: the cycle span is the root, and monitoring,
        // analysis, redeployment (down to every protocol hop) and recovery
        // hang off it in the journal.
        let cycle_start = self.runtime.sim().now();
        let cycle_ctx = self.tracer.root();
        self.runtime.run_for(monitor_for);
        // Surface crash recoveries (durable checkpoint + journal replays)
        // that happened while the system ran: the cycle's decisions should
        // see verified facts about what each restarted host recovered, not
        // infer them from monitoring silence.
        for report in self.runtime.drain_recovery_reports() {
            // Timestamped at the drain (the restart itself happened outside
            // this cycle's span); the restart instant rides in a field.
            self.telemetry
                .event("core.recovery", self.runtime.sim().now().as_micros())
                .field("mode", "crash-replay")
                .field("recovered_at_us", report.at.as_micros())
                .field("host", report.host.raw())
                .field("checkpoint_seq", report.checkpoint_seq)
                .field("replayed", report.replayed)
                .field("state_equiv", report.state_equiv)
                .field("verdicts", report.verdicts.len())
                .field("completed", report.completed())
                .trace(self.tracer.child(&cycle_ctx))
                .emit();
        }
        let snapshots = self
            .adapter
            .pull_monitoring_data(self.runtime.sim(), self.desi.system_mut())?;
        self.telemetry
            .span(
                "core.monitor",
                cycle_start.as_micros(),
                self.runtime.sim().now().as_micros(),
            )
            .field("snapshots", snapshots)
            .trace(self.tracer.child(&cycle_ctx))
            .emit();

        let now = self.runtime.sim().now().as_secs_f64();
        let mut decision = None;
        let mut completed = false;
        let mut failed_moves = Vec::new();
        let mut reconciled = false;

        if snapshots == self.runtime.hosts().len() {
            let availability = redep_model::Availability
                .evaluate(self.desi.system().model(), self.desi.system().deployment());
            self.analyzer.observe(now, availability);
            let d = self.analyzer.analyze(&mut self.desi, objective)?;
            self.telemetry
                .event(
                    "core.analyzer.decision",
                    self.runtime.sim().now().as_micros(),
                )
                .field("algorithm", d.algorithm.clone())
                .field("accepted", d.accepted)
                .field("stable", self.analyzer.is_stable())
                .field("current_availability", d.current_availability)
                .field("predicted_availability", d.record.availability)
                .field("current_latency", d.current_latency)
                .field("predicted_latency", d.record.latency)
                .field("reason", d.reason.clone())
                .trace(self.tracer.child(&cycle_ctx))
                .emit();
            // Aggregate how much of the search ran on the compiled
            // delta-scoring path vs full rescoring.
            let metrics = self.telemetry.metrics();
            metrics
                .counter("algo.eval.full")
                .add(d.record.result.full_evaluations);
            metrics
                .counter("algo.eval.delta")
                .add(d.record.result.delta_evaluations);
            metrics
                .counter("algo.eval.pruned")
                .add(d.record.result.pruned_evaluations);
            metrics
                .counter("algo.hierarchy.clusters")
                .add(d.record.result.hierarchy_clusters);
            metrics
                .counter("algo.hierarchy.refine_rounds")
                .add(d.record.result.refine_rounds);
            if d.accepted {
                let effect_start = self.runtime.sim().now();
                let redeploy_ctx = self.tracer.child(&cycle_ctx);
                let measured_before = self.runtime.measured_availability();
                let target = d.record.result.deployment.clone();
                let step = Duration::from_millis(500);
                for attempt in 1..=self.recovery.effect_attempts() {
                    if attempt > 1 {
                        // Ground every directory in the placement actually
                        // reached, so the new epoch's diff (and its holder
                        // resolution) starts from truth, not from the failed
                        // epoch's optimistic broadcast.
                        self.runtime.resync_directories();
                    }
                    self.adapter.push_deployment_traced(
                        self.runtime.sim_mut(),
                        self.desi.system(),
                        &target,
                        Some(redeploy_ctx),
                    )?;
                    // Drive the system until the epoch settles: everything
                    // confirmed, or every unfinished move given up on.
                    let mut waited = Duration::ZERO;
                    while waited < effect_wait {
                        self.runtime.run_for(step);
                        waited = waited + step;
                        if self.adapter.redeployment_settled(self.runtime.sim())? {
                            break;
                        }
                    }
                    if self.adapter.redeployment_complete(self.runtime.sim())? {
                        completed = true;
                        break;
                    }
                }
                failed_moves = self.adapter.redeployment_failures(self.runtime.sim())?;
                self.telemetry
                    .span(
                        "core.redeployment",
                        effect_start.as_micros(),
                        self.runtime.sim().now().as_micros(),
                    )
                    .field("moves", target.len())
                    .field("completed", completed)
                    .field("failed", failed_moves.len())
                    .field("measured_before", measured_before)
                    .field("measured_after", self.runtime.measured_availability())
                    .trace(redeploy_ctx)
                    .emit();
                if completed {
                    self.desi.adopt_deployment(target);
                } else {
                    match self.recovery {
                        RecoveryPolicy::Abort => {
                            let master = self.runtime.master().expect("centralized");
                            let mut stuck = self
                                .runtime
                                .host(master)
                                .and_then(|h| h.deployer().map(|d| d.status().in_flight))
                                .unwrap_or_default();
                            stuck.extend(failed_moves.iter().map(|(c, _)| c.clone()));
                            return Err(CoreError::RedeploymentTimeout(stuck));
                        }
                        RecoveryPolicy::Reconcile { .. } => {
                            // Accept what the system actually reached: the
                            // model follows reality, every directory is
                            // rewritten from ground truth, and the next
                            // cycle's analysis starts consistent. Giving up
                            // settles the epoch's still-open move spans as
                            // `abandoned` first, so the journal never ends
                            // with dangling moves.
                            self.adapter.abandon_pending_moves(self.runtime.sim_mut())?;
                            let actual = self.runtime.actual_deployment_by_id();
                            self.runtime.resync_directories();
                            self.desi.adopt_deployment(actual);
                            reconciled = true;
                            self.telemetry
                                .event("core.recovery", self.runtime.sim().now().as_micros())
                                .field("mode", "reconcile")
                                .field("failed_moves", failed_moves.len())
                                .field(
                                    "measured_availability",
                                    self.runtime.measured_availability(),
                                )
                                .trace(self.tracer.child(&cycle_ctx))
                                .emit();
                        }
                    }
                }
            }
            decision = Some(d);
        }

        // A transfer from a superseded epoch can land *after* that epoch
        // settled (reliable channels retransmit through arbitrarily long
        // outages), silently re-materializing a component the model gave up
        // on. This can happen even when the *current* epoch completed, so
        // the check is unconditional: never end a cycle with the model
        // diverging from the running system.
        {
            let actual = self.runtime.actual_deployment_by_id();
            if self.desi.system().deployment() != &actual {
                self.runtime.resync_directories();
                self.desi.adopt_deployment(actual);
                reconciled = true;
                self.telemetry
                    .event("core.recovery", self.runtime.sim().now().as_micros())
                    .field("mode", "drift")
                    .trace(self.tracer.child(&cycle_ctx))
                    .emit();
            }
        }

        let measured_availability = self.runtime.measured_availability();
        let model_matches_actual =
            self.desi.system().deployment() == &self.runtime.actual_deployment_by_id();
        self.telemetry
            .span(
                "core.cycle",
                cycle_start.as_micros(),
                self.runtime.sim().now().as_micros(),
            )
            .field("snapshots", snapshots)
            .field("analyzed", decision.is_some())
            .field("redeployed", completed)
            .field("reconciled", reconciled)
            .field("measured_availability", measured_availability)
            .field("model_matches_actual", model_matches_actual)
            .trace(cycle_ctx)
            .emit();
        Ok(CycleReport {
            time_secs: self.runtime.sim().now().as_secs_f64(),
            snapshots_applied: snapshots,
            decision,
            redeployment_completed: completed,
            failed_moves,
            reconciled,
            measured_availability,
        })
    }

    /// Convenience: run `cycles` cycles and return their reports.
    ///
    /// # Errors
    ///
    /// Stops at the first failing cycle.
    pub fn run_cycles(
        &mut self,
        objective: &dyn Objective,
        cycles: usize,
        monitor_for: Duration,
        effect_wait: Duration,
    ) -> Result<Vec<CycleReport>, CoreError> {
        let mut reports = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            reports.push(self.cycle(objective, monitor_for, effect_wait)?);
        }
        Ok(reports)
    }
}

/// Registers a custom algorithm in a framework (helper for examples).
pub fn register_algorithm(
    framework: &mut CentralizedFramework,
    algorithm: impl RedeploymentAlgorithm + 'static,
) {
    framework.desi_mut().container_mut().register(algorithm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn framework() -> CentralizedFramework {
        let s = Generator::generate(&GeneratorConfig::sized(3, 8).with_seed(11)).unwrap();
        CentralizedFramework::new(
            s.model,
            s.initial,
            &RuntimeConfig::default(),
            AnalyzerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn cycles_eventually_analyze_and_do_not_regress() {
        let mut fw = framework();
        let mut analyzed = false;
        let before =
            Availability.evaluate(fw.desi().system().model(), fw.desi().system().deployment());
        for _ in 0..8 {
            let report = fw
                .cycle(
                    &Availability,
                    Duration::from_secs_f64(4.0),
                    Duration::from_secs_f64(30.0),
                )
                .unwrap();
            if report.decision.is_some() {
                analyzed = true;
            }
        }
        assert!(analyzed, "no cycle gathered full monitoring data");
        let after =
            Availability.evaluate(fw.desi().system().model(), fw.desi().system().deployment());
        assert!(
            after >= before - 0.15,
            "availability regressed: {before} -> {after}"
        );
    }

    #[test]
    fn accepted_redeployments_change_the_running_system() {
        let mut fw = framework();
        let mut effected = None;
        for _ in 0..10 {
            let report = fw
                .cycle(
                    &Availability,
                    Duration::from_secs_f64(4.0),
                    Duration::from_secs_f64(60.0),
                )
                .unwrap();
            if let Some(d) = &report.decision {
                if d.accepted {
                    assert!(report.redeployment_completed);
                    effected = Some(d.record.result.deployment.clone());
                    break;
                }
            }
        }
        if let Some(target) = effected {
            // The running system's actual placement matches the target.
            assert_eq!(fw.runtime().actual_deployment_by_id(), target);
        }
    }

    #[test]
    fn telemetry_journals_cycles_and_decisions() {
        let mut fw = framework();
        fw.set_telemetry(Telemetry::default());
        for _ in 0..6 {
            fw.cycle(
                &Availability,
                Duration::from_secs_f64(4.0),
                Duration::from_secs_f64(60.0),
            )
            .unwrap();
        }
        let events = fw.telemetry().journal().snapshot();
        let cycles = events.iter().filter(|e| e.name == "core.cycle").count();
        assert_eq!(cycles, 6);
        assert!(
            events.iter().any(|e| e.name == "prism.monitor.window"),
            "middleware events should share the framework journal"
        );
        assert!(
            events.iter().any(|e| e.name == "core.analyzer.decision"),
            "six cycles should produce at least one analysis"
        );
        fw.runtime().publish_gauges();
        let metrics = fw.telemetry().metrics();
        assert!(metrics.gauge("net.truth.sent").get() > 0.0);
        assert!((0.0..=1.0).contains(&metrics.gauge("core.measured_availability").get()));
        assert!(
            metrics.counter("algo.eval.full").get() > 0,
            "analysis runs should record full evaluations"
        );
        assert!(
            metrics.counter("algo.eval.delta").get() > 0,
            "compiled searches should record delta evaluations"
        );
    }

    #[test]
    fn master_is_required() {
        let s = Generator::generate(&GeneratorConfig::sized(3, 6)).unwrap();
        let cfg = RuntimeConfig {
            master: None,
            ..RuntimeConfig::default()
        };
        assert!(matches!(
            CentralizedFramework::new(s.model, s.initial, &cfg, AnalyzerConfig::default()),
            Err(CoreError::Build(_))
        ));
    }
}
