//! The framework's error type.

use std::error::Error;
use std::fmt;

/// An error produced by the framework layer.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A model operation failed.
    Model(redep_model::ModelError),
    /// An algorithm failed.
    Algorithm(redep_algorithms::AlgoError),
    /// A DeSi operation failed.
    Desi(redep_desi::DesiError),
    /// A middleware operation failed.
    Prism(redep_prism::PrismError),
    /// The runtime could not be assembled from the model.
    Build(String),
    /// A redeployment did not complete within its allotted time.
    RedeploymentTimeout(Vec<String>),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Algorithm(e) => write!(f, "algorithm error: {e}"),
            CoreError::Desi(e) => write!(f, "desi error: {e}"),
            CoreError::Prism(e) => write!(f, "middleware error: {e}"),
            CoreError::Build(msg) => write!(f, "runtime build failed: {msg}"),
            CoreError::RedeploymentTimeout(stuck) => {
                write!(f, "redeployment timed out; in flight: {}", stuck.join(", "))
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Algorithm(e) => Some(e),
            CoreError::Desi(e) => Some(e),
            CoreError::Prism(e) => Some(e),
            _ => None,
        }
    }
}

impl From<redep_model::ModelError> for CoreError {
    fn from(e: redep_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<redep_algorithms::AlgoError> for CoreError {
    fn from(e: redep_algorithms::AlgoError) -> Self {
        CoreError::Algorithm(e)
    }
}

impl From<redep_desi::DesiError> for CoreError {
    fn from(e: redep_desi::DesiError) -> Self {
        CoreError::Desi(e)
    }
}

impl From<redep_prism::PrismError> for CoreError {
    fn from(e: redep_prism::PrismError) -> Self {
        CoreError::Prism(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = redep_algorithms::AlgoError::NoFeasibleDeployment.into();
        assert!(e.source().is_some());
        let e = CoreError::RedeploymentTimeout(vec!["tracker".into()]);
        assert!(e.to_string().contains("tracker"));
    }
}
