//! The centralized Analyzer: the meta-level component that decides *which*
//! algorithm to run, *whether* to accept its result, and *when* the system
//! is worth redeploying.
//!
//! The decision policy is the paper's §5.1:
//!
//! * **Size of the architecture** — "the Exact algorithm … due to its
//!   complexity … can only be used for architectures with very small
//!   numbers of hosts … and components. Therefore, for large architectures
//!   either of the other two algorithms is used."
//! * **Availability profile** — "the analyzer selects a more expensive
//!   algorithm to run if the system is stable … if the system is unstable,
//!   the analyzer runs a less expensive algorithm that could produce faster
//!   results."
//! * **Latency guard** — "in rare situations where [latency improvement] is
//!   not the case, the analyzer … disallows the results of the algorithms
//!   to take effect."

use crate::error::CoreError;
use redep_algorithms::ExactAlgorithm;
use redep_desi::{DeSi, RecordedResult};
use redep_model::{Availability, DeploymentModel, Latency, Objective};
use redep_prism::StabilityGauge;

/// Tuning knobs of the centralized analyzer.
#[derive(Clone, PartialEq, Debug)]
pub struct AnalyzerConfig {
    /// Largest kⁿ search space the Exact algorithm may be given.
    pub exact_space_limit: u64,
    /// ε of the availability-profile stability gauge.
    pub epsilon: f64,
    /// Consecutive stable differences required to call the system stable.
    pub stable_windows: usize,
    /// Maximum tolerated *relative* latency increase of an accepted
    /// deployment (e.g. `0.25` = +25 %).
    pub latency_guard: f64,
    /// Absolute latency increase always tolerated regardless of the
    /// relative guard (keeps the guard meaningful when the current latency
    /// is near zero).
    pub latency_slack: f64,
    /// Minimum availability gain worth a redeployment.
    pub min_gain: f64,
    /// Pins analysis to one registered algorithm, bypassing both the §5.1
    /// selection policy and the whole-suite resolution (used by experiment
    /// campaigns that compare algorithms under identical conditions).
    pub algorithm_override: Option<String>,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            exact_space_limit: 2_000_000,
            epsilon: 0.05,
            stable_windows: 2,
            latency_guard: 0.25,
            latency_slack: 0.1,
            min_gain: 0.01,
            algorithm_override: None,
        }
    }
}

/// What the analyzer decided in one cycle.
#[derive(Clone, PartialEq, Debug)]
pub struct AnalyzerDecision {
    /// The algorithm the policy selected.
    pub algorithm: String,
    /// The recorded algorithm outcome.
    pub record: RecordedResult,
    /// Whether the result should be effected.
    pub accepted: bool,
    /// Availability of the current deployment (model estimate).
    pub current_availability: f64,
    /// Latency of the current deployment (model estimate).
    pub current_latency: f64,
    /// Human-readable explanation of the decision.
    pub reason: String,
}

/// A log entry of the analyzer's history ("Analyzers may also hold the
/// history of the system's execution").
#[derive(Clone, PartialEq, Debug)]
pub struct HistoryEntry {
    /// Simulated time of the observation (seconds).
    pub time_secs: f64,
    /// Observed availability.
    pub availability: f64,
    /// Whether a redeployment was effected at this point.
    pub redeployed: bool,
}

/// The centralized analyzer (Figure 2's "Centralized Analyzer").
#[derive(Clone, PartialEq, Debug)]
pub struct CentralizedAnalyzer {
    config: AnalyzerConfig,
    gauge: StabilityGauge,
    history: Vec<HistoryEntry>,
}

impl CentralizedAnalyzer {
    /// Creates an analyzer with the given policy configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        CentralizedAnalyzer {
            gauge: StabilityGauge::new(config.epsilon, config.stable_windows),
            config,
            history: Vec::new(),
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Records one availability observation into the system's profile.
    pub fn observe(&mut self, time_secs: f64, availability: f64) {
        self.gauge.push(availability);
        self.history.push(HistoryEntry {
            time_secs,
            availability,
            redeployed: false,
        });
    }

    /// Whether the availability profile is currently stable.
    pub fn is_stable(&self) -> bool {
        self.gauge.is_stable()
    }

    /// The execution-profile log.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// The §5.1 selection policy: Exact for small *stable* systems, the
    /// better approximative algorithm (Avala) for large stable systems, the
    /// cheap fast one (Stochastic) while the system is unstable.
    pub fn select_algorithm(&self, model: &DeploymentModel) -> &'static str {
        let space = ExactAlgorithm::search_space(model);
        if !self.is_stable() {
            return "stochastic";
        }
        if space <= self.config.exact_space_limit as u128 {
            "exact"
        } else {
            "avala"
        }
    }

    /// Runs one analysis: select an algorithm, run it through DeSi, and
    /// apply the acceptance policy (minimum gain + latency guard).
    ///
    /// # Errors
    ///
    /// Propagates DeSi/algorithm failures. A budget-refused Exact run falls
    /// back to Avala rather than failing the cycle.
    pub fn analyze(
        &mut self,
        desi: &mut DeSi,
        objective: &dyn Objective,
    ) -> Result<AnalyzerDecision, CoreError> {
        let current_availability =
            Availability.evaluate(desi.system().model(), desi.system().deployment());
        let current_latency =
            Latency::new().evaluate(desi.system().model(), desi.system().deployment());

        let pinned = self.config.algorithm_override.clone();
        let mut algorithm = pinned
            .clone()
            .unwrap_or_else(|| self.select_algorithm(desi.system().model()).to_owned());
        let mut record = match desi.run_algorithm(&algorithm, objective) {
            Ok(r) => r,
            Err(redep_desi::DesiError::Algorithm(
                redep_algorithms::AlgoError::BudgetExceeded { .. },
            )) if algorithm == "exact" => {
                algorithm = "avala".to_owned();
                desi.run_algorithm(&algorithm, objective)?
            }
            Err(e) => return Err(e.into()),
        };

        // "Comparing the results, … determining the best result": when the
        // preferred algorithm finds no worthwhile gain and the system is
        // stable (time is cheap), resolve across the whole registered suite
        // and keep the best outcome.
        if pinned.is_none()
            && self.is_stable()
            && record.availability - current_availability < self.config.min_gain
        {
            let names: Vec<String> = desi
                .container()
                .names()
                .into_iter()
                .map(str::to_owned)
                .filter(|n| *n != algorithm)
                .collect();
            for name in names {
                let Ok(candidate) = desi.run_algorithm(&name, objective) else {
                    continue; // e.g. Exact refusing a large instance
                };
                if objective.is_improvement(record.result.value, candidate.result.value) {
                    algorithm = name;
                    record = candidate;
                }
            }
        }

        let gain = record.availability - current_availability;
        let latency_ok = record.latency
            <= current_latency * (1.0 + self.config.latency_guard)
                + self.config.latency_slack
                + f64::EPSILON;
        let (accepted, reason) = if gain < self.config.min_gain {
            (
                false,
                format!("gain {gain:.4} below threshold {:.4}", self.config.min_gain),
            )
        } else if !latency_ok {
            (
                false,
                format!(
                    "latency guard: {:.3} → {:.3} exceeds +{:.0}%",
                    current_latency,
                    record.latency,
                    self.config.latency_guard * 100.0
                ),
            )
        } else {
            (
                true,
                format!(
                    "availability {current_availability:.4} → {:.4}, latency within guard",
                    record.availability
                ),
            )
        };
        if accepted {
            if let Some(last) = self.history.last_mut() {
                last.redeployed = true;
            }
        }
        Ok(AnalyzerDecision {
            algorithm,
            record,
            accepted,
            current_availability,
            current_latency,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_algorithms::{AvalaAlgorithm, StochasticAlgorithm};
    use redep_model::GeneratorConfig;

    fn desi(hosts: usize, comps: usize) -> DeSi {
        let mut d = DeSi::generate(&GeneratorConfig::sized(hosts, comps).with_seed(3)).unwrap();
        d.container_mut().register(ExactAlgorithm::new());
        d.container_mut().register(AvalaAlgorithm::new());
        d.container_mut().register(StochasticAlgorithm::new());
        d
    }

    fn stable_analyzer() -> CentralizedAnalyzer {
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig::default());
        for i in 0..4 {
            a.observe(i as f64, 0.7);
        }
        assert!(a.is_stable());
        a
    }

    #[test]
    fn unstable_systems_get_the_cheap_algorithm() {
        let d = desi(3, 6);
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig::default());
        a.observe(0.0, 0.9);
        a.observe(1.0, 0.3); // big swing: unstable
        assert_eq!(a.select_algorithm(d.system().model()), "stochastic");
    }

    #[test]
    fn small_stable_systems_get_exact() {
        let d = desi(3, 6); // 3^6 = 729 << limit
        let a = stable_analyzer();
        assert_eq!(a.select_algorithm(d.system().model()), "exact");
    }

    #[test]
    fn large_stable_systems_get_avala() {
        let d = desi(6, 30); // 6^30 >> limit
        let a = stable_analyzer();
        assert_eq!(a.select_algorithm(d.system().model()), "avala");
    }

    #[test]
    fn analyze_accepts_clear_improvements() {
        let mut d = desi(3, 6);
        let mut a = stable_analyzer();
        let decision = a.analyze(&mut d, &Availability).unwrap();
        // Exact finds the optimum; whether accepted depends on the gain, but
        // the decision must be internally consistent.
        assert_eq!(decision.algorithm, "exact");
        if decision.accepted {
            assert!(
                decision.record.availability - decision.current_availability
                    >= a.config().min_gain - 1e-12
            );
        }
    }

    #[test]
    fn tiny_gains_are_rejected() {
        let mut d = desi(3, 6);
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig {
            min_gain: 2.0, // impossible gain: everything rejected
            ..AnalyzerConfig::default()
        });
        for i in 0..4 {
            a.observe(i as f64, 0.5);
        }
        let decision = a.analyze(&mut d, &Availability).unwrap();
        assert!(!decision.accepted);
        assert!(decision.reason.contains("below threshold"));
    }

    #[test]
    fn latency_guard_rejects_latency_regressions() {
        let mut d = desi(3, 6);
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig {
            latency_guard: -1.0, // any latency > slack fails the guard
            latency_slack: 0.0,
            min_gain: -1.0, // gains always pass
            ..AnalyzerConfig::default()
        });
        for i in 0..4 {
            a.observe(i as f64, 0.5);
        }
        let decision = a.analyze(&mut d, &Availability).unwrap();
        if decision.record.latency > 0.0 {
            assert!(!decision.accepted);
            assert!(decision.reason.contains("latency guard"));
        }
    }

    #[test]
    fn history_marks_redeployments() {
        let mut d = desi(3, 6);
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig {
            min_gain: -1.0,
            latency_guard: 1e9,
            ..AnalyzerConfig::default()
        });
        for i in 0..4 {
            a.observe(i as f64, 0.5);
        }
        let decision = a.analyze(&mut d, &Availability).unwrap();
        assert!(decision.accepted);
        assert!(a.history().last().unwrap().redeployed);
    }

    #[test]
    fn stable_analysis_resolves_across_the_whole_suite() {
        // On hub-and-spoke topologies Avala (the size-policy pick) can tie
        // the incumbent; the analyzer must then compare the registered suite
        // and return something at least as good as Avala's result.
        use redep_algorithms::RedeploymentAlgorithm;
        let scenario = crate::Scenario::build(&crate::ScenarioConfig {
            commanders: 2,
            troops: 4,
            seed: 13,
        })
        .unwrap();
        let mut d = DeSi::new(scenario.model.clone(), scenario.initial.clone());
        d.container_mut().register(AvalaAlgorithm::new());
        d.container_mut().register(StochasticAlgorithm::new());
        d.container_mut()
            .register(redep_algorithms::AnnealingAlgorithm::new());

        let avala_alone = AvalaAlgorithm::new()
            .run(
                &scenario.model,
                &Availability,
                scenario.model.constraints(),
                Some(&scenario.initial),
            )
            .unwrap();

        let mut a = stable_analyzer();
        let decision = a.analyze(&mut d, &Availability).unwrap();
        assert!(
            decision.record.result.value >= avala_alone.value - 1e-12,
            "resolution returned something worse than Avala alone: {} < {}",
            decision.record.result.value,
            avala_alone.value
        );
    }

    #[test]
    fn algorithm_override_pins_the_choice() {
        let mut d = desi(3, 6);
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig {
            algorithm_override: Some("stochastic".into()),
            ..AnalyzerConfig::default()
        });
        for i in 0..4 {
            a.observe(i as f64, 0.5);
        }
        // Stable + small would select "exact"; the override wins and the
        // whole-suite resolution must not displace it either.
        let decision = a.analyze(&mut d, &Availability).unwrap();
        assert_eq!(decision.algorithm, "stochastic");
    }

    #[test]
    fn exact_budget_refusal_falls_back_to_avala() {
        // 4^22 ≈ 1.8e13: under the (inflated) analyzer limit, far over the
        // Exact algorithm's own evaluation budget — so selection says
        // "exact" but the run refuses and the analyzer falls back.
        let mut d = desi(4, 22);
        let mut a = CentralizedAnalyzer::new(AnalyzerConfig {
            exact_space_limit: u64::MAX,
            ..AnalyzerConfig::default()
        });
        for i in 0..4 {
            a.observe(i as f64, 0.5);
        }
        assert_eq!(a.select_algorithm(d.system().model()), "exact");
        let decision = a.analyze(&mut d, &Availability).unwrap();
        assert_eq!(decision.algorithm, "avala");
    }
}
