//! The paper's §1 motivating application: distributed deployment of
//! personnel for natural disasters, search-and-rescue efforts, and military
//! crises.
//!
//! "A computer at 'Headquarters' gathers information from the field and
//! displays the current status […] The headquarters computer is networked
//! to a set of PDAs used by 'Commanders' in the field. The commander PDAs
//! are connected directly to each other and to a large number of 'troop'
//! PDAs."

use crate::error::CoreError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_model::{ComponentId, Deployment, DeploymentModel, HostId};

/// Parameters of the generated scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScenarioConfig {
    /// Number of commander PDAs.
    pub commanders: usize,
    /// Number of troop PDAs.
    pub troops: usize,
    /// RNG seed for link qualities and interaction rates.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            commanders: 3,
            troops: 6,
            seed: 0,
        }
    }
}

/// The built scenario: model, initial deployment, and the notable parts.
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    /// The deployment-architecture model.
    pub model: DeploymentModel,
    /// The natural initial deployment (every app on its owner's device).
    pub initial: Deployment,
    /// The headquarters host.
    pub headquarters: HostId,
    /// Commander hosts.
    pub commanders: Vec<HostId>,
    /// Troop hosts.
    pub troops: Vec<HostId>,
    /// The status-display component at headquarters.
    pub status_display: ComponentId,
}

impl Scenario {
    /// Builds the scenario.
    ///
    /// Topology: HQ ↔ every commander (reliable, capacious); commanders
    /// pairwise (decent); each troop ↔ its commander (flaky wireless) and
    /// occasionally ↔ a neighboring troop. Components: HQ runs the status
    /// display, map server and database; each commander a coordination
    /// agent; each troop a position tracker and a messenger.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Build`] for degenerate configurations (zero
    /// commanders with troops present).
    pub fn build(config: &ScenarioConfig) -> Result<Self, CoreError> {
        if config.commanders == 0 && config.troops > 0 {
            return Err(CoreError::Build(
                "troops need at least one commander to report to".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut model = DeploymentModel::new();
        let mut initial = Deployment::new();

        // ---- hosts ----------------------------------------------------
        let headquarters = model.add_host("headquarters")?;
        model.host_mut(headquarters)?.set_memory(4096.0);

        let commanders: Vec<HostId> = (0..config.commanders)
            .map(|i| {
                let h = model.add_host(format!("commander-{i}"))?;
                model.host_mut(h)?.set_memory(256.0);
                Ok(h)
            })
            .collect::<Result<_, redep_model::ModelError>>()?;
        let troops: Vec<HostId> = (0..config.troops)
            .map(|i| {
                let h = model.add_host(format!("troop-{i}"))?;
                model.host_mut(h)?.set_memory(64.0);
                Ok(h)
            })
            .collect::<Result<_, redep_model::ModelError>>()?;

        // ---- physical links --------------------------------------------
        for &c in &commanders {
            let rel = rng.random_range(0.85..0.99);
            let bw = rng.random_range(500_000.0..2_000_000.0);
            model.set_physical_link(headquarters, c, |l| {
                l.set_reliability(rel);
                l.set_bandwidth(bw);
                l.set_delay(rng.random_range(0.005..0.05));
            })?;
        }
        for i in 0..commanders.len() {
            for j in (i + 1)..commanders.len() {
                let rel = rng.random_range(0.7..0.95);
                model.set_physical_link(commanders[i], commanders[j], |l| {
                    l.set_reliability(rel);
                    l.set_bandwidth(rng.random_range(200_000.0..800_000.0));
                    l.set_delay(rng.random_range(0.01..0.1));
                })?;
            }
        }
        for (i, &t) in troops.iter().enumerate() {
            let commander = commanders[i % commanders.len()];
            let rel = rng.random_range(0.4..0.85); // flaky field wireless
            model.set_physical_link(t, commander, |l| {
                l.set_reliability(rel);
                l.set_bandwidth(rng.random_range(10_000.0..50_000.0));
                l.set_delay(rng.random_range(0.02..0.2));
            })?;
            if i > 0 && rng.random_bool(0.5) {
                let peer = troops[i - 1];
                let rel = rng.random_range(0.3..0.7);
                model.set_physical_link(t, peer, |l| {
                    l.set_reliability(rel);
                    l.set_bandwidth(rng.random_range(5_000.0..20_000.0));
                    l.set_delay(rng.random_range(0.02..0.3));
                })?;
            }
        }

        // ---- components and interactions --------------------------------
        let status_display = model.add_component("status-display")?;
        model
            .component_mut(status_display)?
            .set_required_memory(48.0);
        initial.assign(status_display, headquarters);

        let map_server = model.add_component("map-server")?;
        model.component_mut(map_server)?.set_required_memory(96.0);
        initial.assign(map_server, headquarters);

        let database = model.add_component("field-database")?;
        model.component_mut(database)?.set_required_memory(128.0);
        initial.assign(database, headquarters);

        model.set_logical_link(status_display, database, |l| {
            l.set_frequency(6.0);
            l.set_event_size(200.0);
        })?;
        model.set_logical_link(map_server, database, |l| {
            l.set_frequency(2.0);
            l.set_event_size(1_000.0);
        })?;

        let mut agents = Vec::new();
        for (i, &c) in commanders.iter().enumerate() {
            let agent = model.add_component(format!("coordination-agent-{i}"))?;
            model.component_mut(agent)?.set_required_memory(24.0);
            initial.assign(agent, c);
            agents.push(agent);
            // Commanders report to HQ's display and pull maps.
            model.set_logical_link(agent, status_display, |l| {
                l.set_frequency(rng.random_range(2.0..6.0));
                l.set_event_size(rng.random_range(50.0..200.0));
            })?;
            model.set_logical_link(agent, map_server, |l| {
                l.set_frequency(rng.random_range(0.5..2.0));
                l.set_event_size(rng.random_range(500.0..2_000.0));
            })?;
        }
        // Commanders coordinate with each other.
        for i in 0..agents.len() {
            for j in (i + 1)..agents.len() {
                model.set_logical_link(agents[i], agents[j], |l| {
                    l.set_frequency(rng.random_range(1.0..3.0));
                    l.set_event_size(rng.random_range(50.0..150.0));
                })?;
            }
        }

        for (i, &t) in troops.iter().enumerate() {
            let tracker = model.add_component(format!("position-tracker-{i}"))?;
            model.component_mut(tracker)?.set_required_memory(8.0);
            initial.assign(tracker, t);
            let messenger = model.add_component(format!("messenger-{i}"))?;
            model.component_mut(messenger)?.set_required_memory(8.0);
            initial.assign(messenger, t);

            let agent = agents[i % agents.len()];
            // Trackers stream positions to their commander's agent and HQ.
            model.set_logical_link(tracker, agent, |l| {
                l.set_frequency(rng.random_range(3.0..8.0));
                l.set_event_size(rng.random_range(20.0..80.0));
            })?;
            model.set_logical_link(tracker, status_display, |l| {
                l.set_frequency(rng.random_range(0.5..2.0));
                l.set_event_size(rng.random_range(20.0..80.0));
            })?;
            // Messengers chat with the commander agent.
            model.set_logical_link(messenger, agent, |l| {
                l.set_frequency(rng.random_range(1.0..4.0));
                l.set_event_size(rng.random_range(50.0..300.0));
            })?;
        }

        // Location constraints (§3.1 "User Input"): the status display must
        // stay in front of the HQ operators, the database is too big for a
        // PDA, and each position tracker must run on the very device whose
        // position it reports — only agents, messengers and the map server
        // are free to move.
        use redep_model::Constraint;
        use std::collections::BTreeSet;
        model.constraints_mut().add(Constraint::PinnedTo {
            component: status_display,
            hosts: BTreeSet::from([headquarters]),
        });
        model.constraints_mut().add(Constraint::PinnedTo {
            component: database,
            hosts: BTreeSet::from([headquarters]),
        });
        for (i, &t) in troops.iter().enumerate() {
            let tracker = model
                .components()
                .find(|c| c.name() == format!("position-tracker-{i}"))
                .map(|c| c.id())
                .expect("tracker just created");
            model.constraints_mut().add(Constraint::PinnedTo {
                component: tracker,
                hosts: BTreeSet::from([t]),
            });
        }

        Ok(Scenario {
            model,
            initial,
            headquarters,
            commanders,
            troops,
            status_display,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, ConstraintChecker, Objective};

    #[test]
    fn builds_a_consistent_system() {
        let s = Scenario::build(&ScenarioConfig::default()).unwrap();
        s.model.validate().unwrap();
        s.initial.validate(&s.model).unwrap();
        s.model.constraints().check(&s.model, &s.initial).unwrap();
        assert_eq!(s.model.host_count(), 1 + 3 + 6);
        // HQ: 3 apps; commanders: 1 each; troops: 2 each.
        assert_eq!(s.model.component_count(), 3 + 3 + 12);
    }

    #[test]
    fn initial_availability_is_imperfect() {
        // Flaky troop links make the natural deployment lossy — the very
        // motivation for redeployment.
        let s = Scenario::build(&ScenarioConfig::default()).unwrap();
        let availability = Availability.evaluate(&s.model, &s.initial);
        assert!(availability < 0.99, "scenario too perfect: {availability}");
        assert!(availability > 0.3, "scenario degenerate: {availability}");
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = Scenario::build(&ScenarioConfig::default()).unwrap();
        let b = Scenario::build(&ScenarioConfig::default()).unwrap();
        assert_eq!(a.model, b.model);
        let c = Scenario::build(&ScenarioConfig {
            seed: 9,
            ..ScenarioConfig::default()
        })
        .unwrap();
        assert_ne!(a.model, c.model);
    }

    #[test]
    fn scales_with_configuration() {
        let s = Scenario::build(&ScenarioConfig {
            commanders: 5,
            troops: 20,
            seed: 1,
        })
        .unwrap();
        assert_eq!(s.model.host_count(), 26);
        assert_eq!(s.commanders.len(), 5);
        assert_eq!(s.troops.len(), 20);
    }

    #[test]
    fn troops_without_commanders_are_rejected() {
        assert!(Scenario::build(&ScenarioConfig {
            commanders: 0,
            troops: 3,
            seed: 0
        })
        .is_err());
    }
}
