//! Property-based tests on the framework layer: scenario construction,
//! runtime assembly, and routing invariants.

use proptest::prelude::*;
use redep_core::{RuntimeConfig, Scenario, ScenarioConfig, SystemRuntime};
use redep_model::{Availability, ConstraintChecker, Objective};
use redep_netsim::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scenarios_are_always_consistent(
        commanders in 1usize..5,
        troops in 0usize..10,
        seed in any::<u64>(),
    ) {
        let s = Scenario::build(&ScenarioConfig { commanders, troops, seed }).unwrap();
        s.model.validate().unwrap();
        s.initial.validate(&s.model).unwrap();
        s.model.constraints().check(&s.model, &s.initial).unwrap();
        prop_assert_eq!(s.model.host_count(), 1 + commanders + troops);
        prop_assert_eq!(s.model.component_count(), 3 + commanders + 2 * troops);
        // Scenario availability is meaningful (interactions exist).
        let availability = Availability.evaluate(&s.model, &s.initial);
        prop_assert!((0.0..=1.0).contains(&availability));
    }

    #[test]
    fn runtimes_assemble_and_run_for_any_scenario(
        commanders in 1usize..4,
        troops in 0usize..6,
        seed in 0u64..100,
    ) {
        let s = Scenario::build(&ScenarioConfig { commanders, troops, seed }).unwrap();
        let mut rt = SystemRuntime::build(&s.model, &s.initial, &RuntimeConfig::default()).unwrap();
        rt.run_for(Duration::from_secs_f64(3.0));
        // Placement in the running system matches the requested deployment.
        prop_assert_eq!(rt.actual_deployment_by_id(), s.initial);
        // Conservation: every sent message is accounted for.
        let st = rt.sim().stats();
        prop_assert!(st.delivered + st.dropped_loss + st.dropped_disconnected <= st.sent);
    }

    #[test]
    fn monitoring_reports_eventually_reach_the_master(
        commanders in 1usize..4,
        troops in 0usize..5,
    ) {
        // Whatever the topology shape, routed reporting must cover all hosts.
        let s = Scenario::build(&ScenarioConfig { commanders, troops, seed: 42 }).unwrap();
        let mut rt = SystemRuntime::build(&s.model, &s.initial, &RuntimeConfig::default()).unwrap();
        rt.run_for(Duration::from_secs_f64(40.0));
        let master = rt.master().unwrap();
        let reported = rt
            .host(master)
            .unwrap()
            .deployer()
            .unwrap()
            .snapshots()
            .len();
        prop_assert_eq!(reported, rt.hosts().len());
    }
}

/// Deterministic replay of a whole framework run (not proptest: one heavy
/// case suffices).
#[test]
fn whole_runtime_is_deterministic() {
    let run = || {
        let s = Scenario::build(&ScenarioConfig::default()).unwrap();
        let mut rt = SystemRuntime::build(&s.model, &s.initial, &RuntimeConfig::default()).unwrap();
        rt.run_for(Duration::from_secs_f64(15.0));
        (
            rt.sim().stats().sent,
            rt.sim().stats().delivered,
            rt.measured_availability(),
        )
    };
    assert_eq!(run(), run());
}
