//! # redep
//!
//! A framework for **ensuring and improving dependability in highly
//! distributed systems** — a faithful, runnable reproduction of Malek,
//! Beckman, Mikic-Rakic & Medvidovic (DSN 2004).
//!
//! A distributed system's *deployment architecture* — which software
//! component runs on which hardware host — strongly influences its
//! dependability. This crate family continuously improves a running
//! system's deployment via the paper's three-step methodology:
//!
//! 1. **active system monitoring** (event frequencies, link reliabilities,
//!    ε-stability detection),
//! 2. **estimation of an improved deployment architecture** (pluggable
//!    exact, greedy, stochastic, genetic, annealing, and decentralized
//!    auction algorithms),
//! 3. **redeployment** — live migration of serialized components with event
//!    buffering, over lossy links.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `redep-model` | deployment-architecture model, objectives, constraints, generator, awareness, ADL |
//! | [`netsim`] | `redep-netsim` | deterministic discrete-event network simulator |
//! | [`prism`] | `redep-prism` | Prism-MW middleware: components, connectors, events, monitors, admins |
//! | [`algorithms`] | `redep-algorithms` | Exact / Stochastic / Avala / DecAp / genetic / annealing |
//! | [`desi`] | `redep-desi` | DeSi exploration environment: MVC, views, middleware adapter |
//! | [`framework`] | `redep-core` | the framework itself: analyzers, centralized & decentralized instantiations, the §1 scenario |
//! | [`telemetry`] | `redep-telemetry` | metrics registry + sim-time run journal shared by every layer |
//!
//! # Quickstart
//!
//! ```
//! use redep::framework::{CentralizedFramework, AnalyzerConfig, RuntimeConfig, Scenario, ScenarioConfig};
//! use redep::model::Availability;
//! use redep::netsim::Duration;
//!
//! // Build the paper's disaster-relief scenario and let the framework
//! // monitor, analyze, and redeploy it.
//! let scenario = Scenario::build(&ScenarioConfig::default())?;
//! let mut fw = CentralizedFramework::new(
//!     scenario.model,
//!     scenario.initial,
//!     &RuntimeConfig::default(),
//!     AnalyzerConfig::default(),
//! )?;
//! let report = fw.cycle(&Availability, Duration::from_secs_f64(5.0), Duration::from_secs_f64(60.0))?;
//! assert!(report.time_secs > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use redep_algorithms as algorithms;
pub use redep_core as framework;
pub use redep_desi as desi;
pub use redep_model as model;
pub use redep_netsim as netsim;
pub use redep_prism as prism;
pub use redep_telemetry as telemetry;
